package perfmodel

import (
	"math"
	"testing"
)

func TestPaddedLog2(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {16_000_000, 24}, {32_000_000, 25},
		{98_000_000, 27}, {268_400_000, 28}, {550_000_000, 30},
	}
	for _, c := range cases {
		if got := PaddedLog2(c.n); got != c.want {
			t.Errorf("PaddedLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCPUSecondsMatchesTableIV(t *testing.T) {
	cases := []struct {
		constraints int64
		want        float64
	}{
		{16_000_000, 94.2},
		{32_000_000, 188.4},
		{98_000_000, 753.6},
		{268_400_000, 1507.2},
		{550_000_000, 6028.8}, // 1.7h ≈ 6120s; model gives 64×94.2
	}
	for _, c := range cases {
		got := CPUSeconds(c.constraints)
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("CPU(%d) = %.1fs, want %.1fs", c.constraints, got, c.want)
		}
	}
}

func TestProofSizeFit(t *testing.T) {
	// The O(log²N) fit must reproduce Table III within 3%.
	for _, row := range tableIII {
		got := ProofMB(int64(1) << uint(row.logN))
		if math.Abs(got-row.proofMB)/row.proofMB > 0.03 {
			t.Errorf("ProofMB(2^%d) = %.2f, paper %.2f", row.logN, got, row.proofMB)
		}
	}
}

func TestVerifyTimeFit(t *testing.T) {
	for _, row := range tableIII {
		got := VerifySeconds(int64(1)<<uint(row.logN)) * 1e3
		if math.Abs(got-row.verifyMS)/row.verifyMS > 0.04 {
			t.Errorf("Verify(2^%d) = %.1fms, paper %.1fms", row.logN, got, row.verifyMS)
		}
	}
}

func TestSendSeconds(t *testing.T) {
	// Table I: 8.1 MB over a 10 MB/s link = 0.81 s.
	if math.Abs(SendSeconds(8.1)-0.81) > 1e-9 {
		t.Fatal("link model wrong")
	}
}

func TestEndToEndComposition(t *testing.T) {
	e := NoCapEndToEnd(0.15, 16_000_000)
	if e.Prover != 0.15 {
		t.Fatal("prover time not preserved")
	}
	// Table I: total ≈ 1.09 s at 16M.
	if math.Abs(e.Total()-1.09) > 0.05 {
		t.Fatalf("Table I total %.2f, want ≈1.09", e.Total())
	}
}

func TestCPUSlowdownVsGroth16(t *testing.T) {
	// §III: 4.66/4.94/(2.7/5.0) = 1.74×.
	if math.Abs(CPUSlowdownVsGroth16()-1.74) > 0.01 {
		t.Fatalf("slowdown %.3f, paper derives 1.74", CPUSlowdownVsGroth16())
	}
	// Cross-check against the Table I times: 94.2/53.99 = 1.74.
	if math.Abs(94.2/53.99-CPUSlowdownVsGroth16()) > 0.01 {
		t.Fatal("§III accounting inconsistent with Table I")
	}
}

func TestCPUTaskSharesSumToOne(t *testing.T) {
	sum := 0.0
	for _, v := range CPUTaskShares {
		sum += v
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("CPU task shares sum to %f", sum)
	}
}

func TestUnoptimizedCPU(t *testing.T) {
	// §VII: the Goldilocks + Reed-Solomon optimizations improve the CPU
	// baseline by over 2×.
	ratio := CPUSecondsUnoptimized(16_000_000) / CPUSeconds(16_000_000)
	if ratio < 2.0 || ratio > 2.2 {
		t.Fatalf("optimization factor %.2f, paper says ~2.1", ratio)
	}
}
