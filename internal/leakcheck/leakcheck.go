// Package leakcheck is a snapshot-diff goroutine-leak checker for the
// chaos test suite. A cancelled or faulted Prove must hand back every
// worker goroutine it started: tests take a Snapshot before the
// operation and call Check after it, which fails the test if goroutines
// that were not running at snapshot time are still running once a
// grace period expires.
//
// Goroutines are compared by a normalized stack signature (function
// names only — no goroutine ids, argument values, or addresses), so
// two idle workers parked at the same select are the same signature
// and pre-existing runtime/testing goroutines never count as leaks.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Snapshot is the set of goroutine stack signatures at a point in time.
type Snapshot struct {
	counts map[string]int
}

// TB is the subset of testing.TB the checker needs (kept local so the
// package stays importable from non-test helpers).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Take captures the current goroutines.
func Take() *Snapshot {
	return &Snapshot{counts: signatures()}
}

// defaultGrace is how long Check waits for goroutines to drain before
// declaring a leak. Cancellation is asynchronous: workers observe a
// cancelled context at their next checkpoint, so a short settle time is
// expected and is not a leak.
const defaultGrace = 2 * time.Second

// Check fails t if goroutines not present in the snapshot are still
// running after the default grace period.
func (s *Snapshot) Check(t TB) {
	t.Helper()
	s.CheckTimeout(t, defaultGrace)
}

// CheckTimeout is Check with an explicit grace period.
func (s *Snapshot) CheckTimeout(t TB, grace time.Duration) {
	t.Helper()
	leaked := s.wait(grace)
	if len(leaked) == 0 {
		return
	}
	var b strings.Builder
	for _, sig := range leaked {
		fmt.Fprintf(&b, "  %s\n", sig)
	}
	t.Errorf("leakcheck: %d leaked goroutine signature(s) after %v:\n%s", len(leaked), grace, b.String())
}

// Leaked returns the leaked signatures after the grace period (empty if
// clean); exported for tests of the checker itself.
func (s *Snapshot) Leaked(grace time.Duration) []string {
	return s.wait(grace)
}

// wait polls until no new goroutines remain or the grace period ends,
// returning the still-leaked signatures (sorted, with counts).
func (s *Snapshot) wait(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := s.diff()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			sort.Strings(leaked)
			return leaked
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// diff returns signatures running now that exceed their snapshot count.
func (s *Snapshot) diff() []string {
	now := signatures()
	var leaked []string
	for sig, n := range now {
		if extra := n - s.counts[sig]; extra > 0 {
			leaked = append(leaked, fmt.Sprintf("%s ×%d", sig, extra))
		}
	}
	return leaked
}

// signatures captures all goroutine stacks and aggregates them by
// normalized signature, skipping runtime/testing infrastructure and the
// calling goroutine.
func signatures() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	counts := make(map[string]int)
	for i, g := range strings.Split(string(buf), "\n\n") {
		sig, ok := normalize(g)
		if !ok || i == 0 { // goroutine 0 of the dump is the caller
			continue
		}
		counts[sig]++
	}
	return counts
}

// normalize reduces one goroutine dump to a stable signature: the
// chain of function names from innermost frame to creation site.
// It reports ok=false for goroutines that should never count as leaks.
func normalize(g string) (string, bool) {
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return "", false
	}
	var funcs []string
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "\t") { // file:line frame detail
			continue
		}
		name := line
		if i := strings.LastIndex(name, "("); i > 0 {
			name = name[:i]
		}
		name = strings.TrimPrefix(name, "created by ")
		name = strings.TrimSpace(name)
		if j := strings.Index(name, " in goroutine"); j > 0 {
			name = name[:j]
		}
		if name != "" {
			funcs = append(funcs, name)
		}
	}
	if len(funcs) == 0 {
		return "", false
	}
	sig := strings.Join(funcs, " <- ")
	for _, skip := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.tRunner",
		"testing.runFuzzing",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.runfinq",
		"runtime.ReadTrace",
		"os/signal.signal_recv",
		"os/signal.loop",
	} {
		if strings.Contains(sig, skip) {
			return "", false
		}
	}
	return sig, true
}
