package leakcheck

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCleanSnapshotHasNoLeaks(t *testing.T) {
	snap := Take()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
	if leaked := snap.Leaked(time.Second); len(leaked) != 0 {
		t.Fatalf("finished goroutines reported as leaks: %v", leaked)
	}
}

func TestDetectsBlockedGoroutine(t *testing.T) {
	snap := Take()
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	leaked := snap.Leaked(50 * time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("blocked goroutine not detected as a leak")
	}
	found := false
	for _, sig := range leaked {
		if strings.Contains(sig, "leakcheck") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak signature does not name the leaking package: %v", leaked)
	}
	close(release)
	// Once released, the same snapshot drains clean within the grace period.
	if leaked := snap.Leaked(time.Second); len(leaked) != 0 {
		t.Fatalf("released goroutine still reported: %v", leaked)
	}
}

func TestGracePeriodAbsorbsSlowExits(t *testing.T) {
	snap := Take()
	go func() { time.Sleep(50 * time.Millisecond) }()
	// The goroutine outlives the operation but exits within the grace
	// period, so it is settling, not leaking.
	if leaked := snap.Leaked(time.Second); len(leaked) != 0 {
		t.Fatalf("slow-exiting goroutine reported as a leak: %v", leaked)
	}
}

// errorfRecorder lets the test observe Check's failure path without
// failing itself.
type errorfRecorder struct {
	calls int
}

func (r *errorfRecorder) Helper()                           {}
func (r *errorfRecorder) Errorf(format string, args ...any) { r.calls++ }

func TestCheckReportsThroughTB(t *testing.T) {
	snap := Take()
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	var rec errorfRecorder
	snap.CheckTimeout(&rec, 20*time.Millisecond)
	if rec.calls != 1 {
		t.Fatalf("CheckTimeout reported %d failures, want 1", rec.calls)
	}
}
