// Package hashfn provides the SHA3-256 hashing primitives of the NoCap
// stack. The hash FU (paper §IV-B) is a 2-to-1 compressor: it "takes two
// 256-bit values and outputs a 256-bit result" at 1 KB/cycle; Merkle
// trees, Fiat–Shamir transcripts and leaf packing are all built from this
// primitive, mirrored here in software.
package hashfn

import (
	"crypto/sha3"
	"encoding/binary"

	"nocap/internal/field"
)

// Size is the digest size in bytes (256 bits).
const Size = 32

// Digest is a 256-bit SHA3 output.
type Digest [Size]byte

// Sum hashes an arbitrary byte string.
func Sum(data []byte) Digest {
	return Digest(sha3.Sum256(data))
}

// Hash2 is the hash FU's 2-to-1 compression: SHA3-256 of the
// concatenation of two 256-bit inputs.
func Hash2(a, b Digest) Digest {
	var buf [2 * Size]byte
	copy(buf[:Size], a[:])
	copy(buf[Size:], b[:])
	return Sum(buf[:])
}

// hashElemsStack is the largest element count HashElems packs into a
// stack buffer (2 KiB of packed bytes). It covers every Merkle leaf the
// PCS produces — columns are Rows(+masks) elements, 128+12 at paper
// scale — so the leaf hot path performs zero allocations.
const hashElemsStack = 256

// HashElems packs field elements into 64-bit little-endian words (four
// elements per 256-bit hash input block, matching the FU's
// reinterpretation of "each group of four consecutive 64-bit elements as
// a 256-bit input") and hashes them. Vectors of up to hashElemsStack
// elements are packed into a stack buffer; only oversized vectors
// allocate scratch.
func HashElems(elems []field.Element) Digest {
	if len(elems) <= hashElemsStack {
		var buf [8 * hashElemsStack]byte
		b := buf[:8*len(elems)]
		PutElems(b, elems)
		return Sum(b)
	}
	b := make([]byte, 8*len(elems))
	PutElems(b, elems)
	return Sum(b)
}

// PutElems packs elems into dst as 64-bit little-endian words. len(dst)
// must be exactly 8·len(elems). Batch hashers (kernel.ColumnLeavesCtx)
// pack into reused buffers with it instead of allocating per column.
func PutElems(dst []byte, elems []field.Element) {
	if len(dst) != 8*len(elems) {
		panic("hashfn: PutElems buffer size mismatch")
	}
	for i, e := range elems {
		binary.LittleEndian.PutUint64(dst[8*i:], e.Uint64())
	}
}

// AppendElems appends the packed little-endian representation of elems to
// dst and returns the extended slice. Callers that hash many vectors
// reuse one byte buffer (dst[:0]) instead of allocating per vector.
func AppendElems(dst []byte, elems []field.Element) []byte {
	for _, e := range elems {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], e.Uint64())
		dst = append(dst, b[:]...)
	}
	return dst
}

// ElemBytes returns the packed little-endian byte representation of a
// field-element vector, as streamed into the hash FU.
func ElemBytes(elems []field.Element) []byte {
	return AppendElems(make([]byte, 0, 8*len(elems)), elems)
}
