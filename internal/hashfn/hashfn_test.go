package hashfn

import (
	"testing"

	"nocap/internal/field"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"))
	b := Sum([]byte("hello"))
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if a == Sum([]byte("world")) {
		t.Fatal("distinct inputs collide")
	}
}

func TestHash2OrderMatters(t *testing.T) {
	a := Sum([]byte("a"))
	b := Sum([]byte("b"))
	if Hash2(a, b) == Hash2(b, a) {
		t.Fatal("Hash2 must not be commutative")
	}
	if Hash2(a, b) != Hash2(a, b) {
		t.Fatal("Hash2 not deterministic")
	}
}

func TestHashElemsPacking(t *testing.T) {
	// HashElems must equal Sum over the little-endian packed bytes.
	elems := []field.Element{field.New(1), field.New(1 << 40), field.New(field.Modulus - 1)}
	if HashElems(elems) != Sum(ElemBytes(elems)) {
		t.Fatal("HashElems disagrees with packed Sum")
	}
	if len(ElemBytes(elems)) != 24 {
		t.Fatal("packing size wrong")
	}
	// Little-endian check.
	b := ElemBytes([]field.Element{field.New(0x0102030405060708)})
	if b[0] != 0x08 || b[7] != 0x01 {
		t.Fatal("packing endianness wrong")
	}
}

func TestHashElemsDistinguishesLayout(t *testing.T) {
	a := HashElems([]field.Element{field.New(1), field.New(0)})
	b := HashElems([]field.Element{field.New(1)})
	if a == b {
		t.Fatal("length not bound into hash")
	}
}
