package hashfn

import (
	"nocap/internal/field"
	"nocap/internal/keccak"
)

// keccakX4Engine is the multi-buffer engine: batch entry points route
// groups of four independent messages through the interleaved
// Keccak-f[1600] datapath of internal/keccak (AVX2 on amd64, four-wide
// scalar elsewhere), so one permutation pass advances four Merkle nodes
// or four codeword columns. Single-message entry points take the scalar
// path — the primitive is the same SHA3-256 function, so digests agree
// bit-for-bit with the sha3 engine; what distinguishes the engines is
// the datapath and the transcript/wire identity.
type keccakX4Engine struct{}

func (keccakX4Engine) ID() ID       { return IDKeccakX4 }
func (keccakX4Engine) Name() string { return "keccak-x4" }

func (keccakX4Engine) Sum(data []byte) Digest { return Sum(data) }

func (keccakX4Engine) Hash2(a, b Digest) Digest { return Hash2(a, b) }

func (keccakX4Engine) HashElems(elems []field.Element) Digest { return HashElems(elems) }

func (keccakX4Engine) CompressMany(dst, prev []Digest) {
	if len(prev) != 2*len(dst) {
		panic("hashfn: CompressMany size mismatch")
	}
	var in [4][64]byte
	var out [4][32]byte
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		for k := 0; k < 4; k++ {
			copy(in[k][:Size], prev[2*(i+k)][:])
			copy(in[k][Size:], prev[2*(i+k)+1][:])
		}
		keccak.Compress64X4(&out, &in)
		for k := 0; k < 4; k++ {
			dst[i+k] = Digest(out[k])
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = Hash2(prev[2*i], prev[2*i+1])
	}
}

func (keccakX4Engine) SumMany(dst []Digest, msgs [][]byte) {
	if len(msgs) != len(dst) {
		panic("hashfn: SumMany size mismatch")
	}
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		n := len(msgs[i])
		if len(msgs[i+1]) != n || len(msgs[i+2]) != n || len(msgs[i+3]) != n {
			// Ragged group: the interleaved sponge absorbs aligned
			// blocks only; finish the batch on the scalar path.
			break
		}
		in := [4][]byte{msgs[i], msgs[i+1], msgs[i+2], msgs[i+3]}
		var out [4][32]byte
		keccak.Sum256X4(&out, &in)
		for k := 0; k < 4; k++ {
			dst[i+k] = Digest(out[k])
		}
	}
	for ; i < len(dst); i++ {
		dst[i] = Sum(msgs[i])
	}
}
