package hashfn

import (
	"bytes"
	"crypto/sha3"
	"encoding/hex"
	"math/rand"
	"testing"

	"nocap/internal/field"
)

// digestSink defeats dead-code elimination in the allocation tests.
var digestSink Digest

// TestEngineRegistry pins the registry contents: ids, names, default.
func TestEngineRegistry(t *testing.T) {
	if Default().ID() != IDSHA3 || Default().Name() != "sha3" {
		t.Fatalf("default engine is %q/%d, want sha3/%d", Default().Name(), Default().ID(), IDSHA3)
	}
	names := Names()
	if len(names) != 2 || names[0] != "sha3" || names[1] != "keccak-x4" {
		t.Fatalf("Names() = %v", names)
	}
	for _, id := range []ID{IDSHA3, IDKeccakX4} {
		e, ok := ByID(id)
		if !ok || e.ID() != id {
			t.Fatalf("ByID(%d) = %v, %v", id, e, ok)
		}
		byName, ok := ByName(e.Name())
		if !ok || byName.ID() != id {
			t.Fatalf("ByName(%q) does not round-trip", e.Name())
		}
	}
	if _, ok := ByID(0); ok {
		t.Fatal("ByID(0) resolved")
	}
	if _, ok := ByName("poseidon2"); ok {
		t.Fatal("ByName resolved an unregistered engine")
	}
}

// TestEngineGoldenVectors pins both engines to the published SHA3-256
// test vectors, so an engine can never silently drift from the
// primitive it claims to implement.
func TestEngineGoldenVectors(t *testing.T) {
	vectors := []struct{ msg, hexDigest string }{
		{"", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
		{"abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	}
	for _, eng := range []Engine{Default(), mustEngine(t, IDKeccakX4)} {
		for _, v := range vectors {
			want, err := hex.DecodeString(v.hexDigest)
			if err != nil {
				t.Fatal(err)
			}
			if got := eng.Sum([]byte(v.msg)); !bytes.Equal(got[:], want) {
				t.Errorf("%s: Sum(%q) = %x, want %s", eng.Name(), v.msg, got, v.hexDigest)
			}
		}
	}
}

func mustEngine(t *testing.T, id ID) Engine {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("engine %d not registered", id)
	}
	return e
}

// TestEngineCompressManyParity pins the multi-buffer engine against
// crypto/sha3 across every batch size from 1 to 9 sibling pairs: the
// aligned sizes (4, 8) exercise full interleaved passes on all 4 lanes,
// the ragged sizes exercise the scalar tail, and every output position
// is checked independently.
func TestEngineCompressManyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x4 := mustEngine(t, IDKeccakX4)
	for pairs := 1; pairs <= 9; pairs++ {
		prev := make([]Digest, 2*pairs)
		for i := range prev {
			rng.Read(prev[i][:])
		}
		got := make([]Digest, pairs)
		x4.CompressMany(got, prev)
		ref := make([]Digest, pairs)
		Default().CompressMany(ref, prev)
		for i := 0; i < pairs; i++ {
			var cat [2 * Size]byte
			copy(cat[:Size], prev[2*i][:])
			copy(cat[Size:], prev[2*i+1][:])
			want := Digest(sha3.Sum256(cat[:]))
			if got[i] != want {
				t.Fatalf("pairs=%d node %d: keccak-x4 disagrees with crypto/sha3", pairs, i)
			}
			if ref[i] != want {
				t.Fatalf("pairs=%d node %d: sha3 engine disagrees with crypto/sha3", pairs, i)
			}
		}
	}
}

// TestEngineSumManyParity covers the batched column hashing for aligned
// and ragged groups, equal and unequal message lengths (unequal lengths
// must fall back to the scalar sponge, not mishash).
func TestEngineSumManyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x4 := mustEngine(t, IDKeccakX4)
	lengthSets := [][]int{
		{40},
		{40, 40, 40, 40},
		{40, 40, 40, 40, 40, 40, 40},
		{16, 300, 16, 16, 8, 8, 8, 8, 1120}, // ragged head group, aligned middle
		{0, 0, 0, 0},
		{136, 136, 136, 136, 137},
	}
	for _, lens := range lengthSets {
		msgs := make([][]byte, len(lens))
		for i, n := range lens {
			msgs[i] = make([]byte, n)
			rng.Read(msgs[i])
		}
		got := make([]Digest, len(msgs))
		x4.SumMany(got, msgs)
		for i := range msgs {
			if want := Digest(sha3.Sum256(msgs[i])); got[i] != want {
				t.Fatalf("lens=%v msg %d: keccak-x4 SumMany disagrees with crypto/sha3", lens, i)
			}
		}
	}
}

// TestHashElemsMatchesEngines pins leaf packing across both engines and
// the package function.
func TestHashElemsMatchesEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 4, 17, 128, 140, 256, 257, 1000} {
		elems := make([]field.Element, n)
		for i := range elems {
			elems[i] = field.New(rng.Uint64())
		}
		want := Sum(ElemBytes(elems))
		for _, eng := range []Engine{Default(), mustEngine(t, IDKeccakX4)} {
			if got := eng.HashElems(elems); got != want {
				t.Fatalf("n=%d: %s HashElems mismatch", n, eng.Name())
			}
		}
	}
}

// TestHashElemsNoAlloc is the satellite regression test: leaf-sized
// vectors must hash with zero allocations (the old implementation
// allocated a fresh byte buffer per call on the Merkle leaf hot path).
func TestHashElemsNoAlloc(t *testing.T) {
	elems := make([]field.Element, 140) // Rows + masks at paper scale
	for i := range elems {
		elems[i] = field.New(uint64(i) * 0x9e3779b97f4a7c15)
	}
	allocs := testing.AllocsPerRun(200, func() {
		digestSink = HashElems(elems)
	})
	if allocs != 0 {
		t.Fatalf("HashElems(%d elems) allocates %.1f times per call, want 0", len(elems), allocs)
	}
}

// FuzzEngineParity is the differential fuzz target of the engine layer:
// for arbitrary input bytes, every registered engine must agree with
// crypto/sha3 on Sum, Hash2, CompressMany and SumMany outputs.
func FuzzEngineParity(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte("nocap"), uint8(4))
	f.Add(bytes.Repeat([]byte{0xa5}, 300), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, batch uint8) {
		n := 1 + int(batch)%9
		// Derive n deterministic sibling pairs from the input.
		prev := make([]Digest, 2*n)
		for i := range prev {
			prev[i] = Sum(append([]byte{byte(i)}, data...))
		}
		want := make([]Digest, n)
		for i := 0; i < n; i++ {
			var cat [2 * Size]byte
			copy(cat[:Size], prev[2*i][:])
			copy(cat[Size:], prev[2*i+1][:])
			want[i] = Digest(sha3.Sum256(cat[:]))
		}
		// Split data into n equal-length messages plus one ragged tail.
		msgs := make([][]byte, n)
		chunk := 0
		if n > 0 {
			chunk = len(data) / n
		}
		for i := range msgs {
			msgs[i] = data[i*chunk : (i+1)*chunk]
		}
		if len(data) > 0 {
			msgs = append(msgs, data)
		}
		for _, eng := range []Engine{Default(), keccakX4Engine{}} {
			if got := eng.Sum(data); got != Digest(sha3.Sum256(data)) {
				t.Fatalf("%s: Sum mismatch", eng.Name())
			}
			got := make([]Digest, n)
			eng.CompressMany(got, prev)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: CompressMany node %d mismatch", eng.Name(), i)
				}
			}
			sums := make([]Digest, len(msgs))
			eng.SumMany(sums, msgs)
			for i := range msgs {
				if sums[i] != Digest(sha3.Sum256(msgs[i])) {
					t.Fatalf("%s: SumMany msg %d mismatch", eng.Name(), i)
				}
			}
		}
	})
}
