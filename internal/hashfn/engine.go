package hashfn

import "nocap/internal/field"

// ID identifies a registered hash engine. The id is part of a proof's
// meaning: it is bound into the serialized proof header (spartan wire
// format v2) and into the Fiat–Shamir transcript seed, so proofs
// produced under one engine are rejected — with a typed error, before
// any cryptographic work — when verified under another.
type ID uint8

const (
	// IDSHA3 is the scalar SHA3-256 engine backed by crypto/sha3. It is
	// the default and is bit-for-bit transcript-identical to the
	// pre-engine versions of this library: proofs serialized before the
	// engine layer existed verify unchanged under it.
	IDSHA3 ID = 1
	// IDKeccakX4 is the multi-buffer Keccak-f[1600] engine built on
	// internal/keccak: batch entry points permute four independent
	// sponge states per pass (the software analogue of the paper's
	// 128-lane hash FU, §IV-B). The hash primitive is the same SHA3-256
	// function, but the engine is a distinct identity with its own
	// transcript domain, exactly like a future arithmetic-hash engine
	// (Poseidon2/MiMC, ROADMAP item 3) will be.
	IDKeccakX4 ID = 2
)

// Engine is one hash implementation behind the Merkle/transcript seam.
// The three batch entry points exist so implementations can keep many
// independent states in flight (the paper's hash FU holds 128): callers
// present whole Merkle levels and column groups, not one message at a
// time. All methods must be safe for concurrent use.
type Engine interface {
	// ID returns the engine's registered identity byte.
	ID() ID
	// Name returns the engine's registered name (CLI -hash values).
	Name() string
	// Sum hashes an arbitrary byte string.
	Sum(data []byte) Digest
	// Hash2 is the 2-to-1 Merkle compression H(a ‖ b).
	Hash2(a, b Digest) Digest
	// HashElems hashes a packed field-element vector (leaf packing).
	HashElems(elems []field.Element) Digest
	// CompressMany fills dst[i] = Hash2(prev[2i], prev[2i+1]) — one
	// Merkle-level chunk. len(prev) must be 2·len(dst).
	CompressMany(dst, prev []Digest)
	// SumMany fills dst[i] = Sum(msgs[i]). len(msgs) must equal
	// len(dst). Multi-buffer engines hash equal-length groups in
	// interleaved passes; ragged groups fall back to scalar hashing.
	SumMany(dst []Digest, msgs [][]byte)
}

// sha3Engine is the scalar SHA3-256 engine: every method delegates to
// the package-level primitives, so its digests and performance profile
// are exactly those of the pre-engine library.
type sha3Engine struct{}

func (sha3Engine) ID() ID       { return IDSHA3 }
func (sha3Engine) Name() string { return "sha3" }

func (sha3Engine) Sum(data []byte) Digest { return Sum(data) }

func (sha3Engine) Hash2(a, b Digest) Digest { return Hash2(a, b) }

func (sha3Engine) HashElems(elems []field.Element) Digest { return HashElems(elems) }

func (sha3Engine) CompressMany(dst, prev []Digest) {
	if len(prev) != 2*len(dst) {
		panic("hashfn: CompressMany size mismatch")
	}
	for i := range dst {
		dst[i] = Hash2(prev[2*i], prev[2*i+1])
	}
}

func (sha3Engine) SumMany(dst []Digest, msgs [][]byte) {
	if len(msgs) != len(dst) {
		panic("hashfn: SumMany size mismatch")
	}
	for i := range dst {
		dst[i] = Sum(msgs[i])
	}
}

// engines is the registry, indexed by registration order. Engines are
// stateless empty structs so interface values stay comparable (params
// structs holding an Engine remain ==-comparable).
var engines = []Engine{sha3Engine{}, keccakX4Engine{}}

// Default returns the scalar SHA3-256 engine.
func Default() Engine { return sha3Engine{} }

// ByID resolves a registered engine by identity byte.
func ByID(id ID) (Engine, bool) {
	for _, e := range engines {
		if e.ID() == id {
			return e, true
		}
	}
	return nil, false
}

// ByName resolves a registered engine by name.
func ByName(name string) (Engine, bool) {
	for _, e := range engines {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}

// Names lists the registered engine names in registration order (the
// default engine first).
func Names() []string {
	out := make([]string, len(engines))
	for i, e := range engines {
		out[i] = e.Name()
	}
	return out
}
