// Package tasks models the Spartan+Orion prover as NoCap executes it: the
// five task families of paper §V-A (sumcheck DP, Reed-Solomon encoding,
// Merkle trees, SpMV, polynomial arithmetic), each compiled into a
// compact statically scheduled instruction-stream program (internal/isa)
// that the cycle-level simulator (internal/sim) costs.
//
// # Calibration
//
// The per-constraint operation and traffic coefficients below are fitted
// to the paper's published measurements, since the authors' RTL and
// hand-schedules are not available (DESIGN.md §3):
//
//   - total prover time: 151.3 ms at 2^24 padded constraints (Table IV),
//     growing mildly super-linearly with log N (the 622×→560× speedup
//     taper across Table IV);
//   - runtime breakdown ~70% sumcheck / 9% RS / 12% poly / 5% Merkle /
//     0.5% SpMV (Fig. 6a);
//   - sumcheck mul-bound and arithmetic throughput the most sensitive
//     resource (Fig. 7), memory bandwidth next;
//   - recomputation saving 31% of sumcheck memory traffic (§V-A, §VIII-C);
//   - 8 MB register-file working set for sumcheck recomputation
//     intermediates (Fig. 7: smaller register files spill and degrade
//     drastically).
//
// A unit test asserts the emergent Table IV times stay within 3% of the
// paper.
package tasks

import (
	"fmt"

	"nocap/internal/isa"
)

// Kind labels a task family (paper Fig. 4).
type Kind int

// The five task families of §V-A.
const (
	SpMV Kind = iota
	Sumcheck
	RSEncode
	Merkle
	PolyArith
	NumKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SpMV:
		return "spmv"
	case Sumcheck:
		return "sumcheck"
	case RSEncode:
		return "rs-encode"
	case Merkle:
		return "merkle"
	case PolyArith:
		return "poly-arith"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Options selects protocol variants.
type Options struct {
	// Recompute enables the sumcheck-input recomputation optimization
	// (§V-A): DP inputs are re-derived from the streamed 61-bit circuit
	// and witness instead of loading precomputed Az/Bz/Cz, trading
	// multiplier throughput for 31% less sumcheck memory traffic.
	Recompute bool
	// Reps is the soundness repetition count (3 in the paper).
	Reps int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{Recompute: true, Reps: 3} }

// Task couples a task family with its compiled program.
type Task struct {
	Kind    Kind
	Program *isa.Program
}

// Per-constraint coefficients (fitted; see package comment). All are per
// padded R1CS constraint.
const (
	// SpMV: stream the three sparse matrices once (61-bit entries) plus
	// banded vector chunks (§V-A); one multiply-accumulate per nonzero.
	spmvMemBytes   = 46
	spmvMuls       = 6
	spmvAdds       = 6
	spmvShuffle    = 3 // Beneš alignment passes
	spmvWorkingSet = 1 << 20

	// Sumcheck (all repetitions, all sumcheck instances — up to 18N
	// elements per §V-A): mul-bound with recomputation on.
	sumcheckMulsBase  = 13560 // at L = 24; scaled by (0.45 + 0.55·L/24)
	sumcheckAdds      = 8000
	sumcheckMemOn     = 5837 // bytes; recomputation on
	sumcheckMemOff    = 8464 // bytes; = on / (1 − 0.31), §VIII-C
	sumcheckMulsOff   = 4000 // without recomputation, far fewer multiplies
	sumcheckAddsOff   = 3000
	sumcheckWorkSet   = 8 << 20 // the 8 MB register-file working set
	sumcheckHashBytes = 8       // per constraint, transcript hashing (small)

	// Reed-Solomon encoding: four-step NTT passes through the 64-lane FU.
	rsNTTPasses = 52
	rsMemBytes  = 400

	// Polynomial arithmetic: memory-bound element-wise passes + NTTs.
	polyMemBytes  = 1108
	polyMuls      = 1500
	polyAdds      = 1000
	polyNTTPasses = 8

	// Merkle trees: 1 KB/cycle hashing; tree layers via interleavings.
	merkleHashBytes = 462
	merkleMemBytes  = 400
	merkleShuffle   = 4
)

// lScale is the log-dependent growth of sumcheck recomputation work: each
// of the L rounds re-derives its inputs, so total work carries an L/24
// component (normalized to the 2^24 calibration anchor).
func lScale(logN int) float64 { return 0.45 + 0.55*float64(logN)/24.0 }

// emitScaled emits n-per-constraint × N elements on the given op.
func emitScaled(p *isa.Program, op isa.Op, perConstraint float64, n int64) {
	p.EmitElems(op, int64(perConstraint*float64(n)))
}

// Inventory compiles the full Spartan+Orion prover for a 2^logN-constraint
// statement into the task sequence NoCap executes serially (§V: "Tasks
// are executed one at a time, following program order").
func Inventory(logN int, opts Options) []Task {
	if logN < 10 || logN > 40 {
		panic("tasks: logN out of supported range")
	}
	if opts.Reps < 1 {
		panic("tasks: Reps must be ≥ 1")
	}
	n := int64(1) << uint(logN)
	repFrac := float64(opts.Reps) / 3.0 // coefficients calibrated at 3 reps

	spmv := isa.NewProgram("spmv")
	spmv.WorkingSetBytes = spmvWorkingSet
	emitScaled(spmv, isa.OpLoad, spmvMemBytes/8.0*0.8, n)
	emitScaled(spmv, isa.OpStore, spmvMemBytes/8.0*0.2, n)
	emitScaled(spmv, isa.OpVMul, spmvMuls, n)
	emitScaled(spmv, isa.OpVAdd, spmvAdds, n)
	emitScaled(spmv, isa.OpVShuffle, spmvShuffle, n)

	sc := isa.NewProgram("sumcheck")
	sc.WorkingSetBytes = sumcheckWorkSet
	muls, adds, mem := float64(sumcheckMulsOff), float64(sumcheckAddsOff), float64(sumcheckMemOff)
	if opts.Recompute {
		muls, adds, mem = sumcheckMulsBase, sumcheckAdds, sumcheckMemOn
	}
	emitScaled(sc, isa.OpVMul, muls*lScale(logN)*repFrac, n)
	emitScaled(sc, isa.OpVAdd, adds*repFrac, n)
	emitScaled(sc, isa.OpLoad, mem/8.0*0.75*repFrac, n)
	emitScaled(sc, isa.OpStore, mem/8.0*0.25*repFrac, n)
	emitScaled(sc, isa.OpVHash, sumcheckHashBytes/8.0*repFrac, n)

	rs := isa.NewProgram("rs-encode")
	rs.WorkingSetBytes = 2 << 20
	emitScaled(rs, isa.OpVNTT, rsNTTPasses*repFrac, n)
	emitScaled(rs, isa.OpLoad, rsMemBytes/8.0*0.4*repFrac, n)
	emitScaled(rs, isa.OpStore, rsMemBytes/8.0*0.6*repFrac, n)

	poly := isa.NewProgram("poly-arith")
	poly.WorkingSetBytes = 2 << 20
	emitScaled(poly, isa.OpVMul, polyMuls*repFrac, n)
	emitScaled(poly, isa.OpVAdd, polyAdds*repFrac, n)
	emitScaled(poly, isa.OpVNTT, polyNTTPasses*repFrac, n)
	emitScaled(poly, isa.OpLoad, polyMemBytes/8.0*0.6*repFrac, n)
	emitScaled(poly, isa.OpStore, polyMemBytes/8.0*0.4*repFrac, n)

	mk := isa.NewProgram("merkle")
	mk.WorkingSetBytes = 1 << 20
	emitScaled(mk, isa.OpVHash, merkleHashBytes/8.0*repFrac, n)
	emitScaled(mk, isa.OpVShuffle, merkleShuffle*repFrac, n)
	emitScaled(mk, isa.OpLoad, merkleMemBytes/8.0*0.9*repFrac, n)
	emitScaled(mk, isa.OpStore, merkleMemBytes/8.0*0.1*repFrac, n)

	return []Task{
		{Kind: SpMV, Program: spmv},
		{Kind: Sumcheck, Program: sc},
		{Kind: RSEncode, Program: rs},
		{Kind: PolyArith, Program: poly},
		{Kind: Merkle, Program: mk},
	}
}

// SumcheckTrafficReduction returns the fraction of sumcheck memory
// traffic saved by the recomputation optimization (the paper's 31%,
// §V-A/§VIII-C), as reproduced by this model.
func SumcheckTrafficReduction() float64 {
	return 1.0 - float64(sumcheckMemOn)/float64(sumcheckMemOff)
}
