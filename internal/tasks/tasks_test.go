package tasks

import (
	"math"
	"testing"

	"nocap/internal/isa"
)

func TestInventoryStructure(t *testing.T) {
	inv := Inventory(24, DefaultOptions())
	if len(inv) != int(NumKinds) {
		t.Fatalf("inventory has %d tasks, want %d", len(inv), NumKinds)
	}
	seen := map[Kind]bool{}
	for _, task := range inv {
		if task.Program == nil {
			t.Fatalf("%s has no program", task.Kind)
		}
		seen[task.Kind] = true
	}
	for k := Kind(0); k < NumKinds; k++ {
		if !seen[k] {
			t.Fatalf("missing task %s", k)
		}
	}
}

func TestWorkScalesWithN(t *testing.T) {
	small := Inventory(20, DefaultOptions())
	large := Inventory(24, DefaultOptions())
	for i := range small {
		ms, ml := small[i].Program.MemBytes(), large[i].Program.MemBytes()
		if ml < 15*ms || ml > 18*ms {
			t.Fatalf("%s traffic scaling %d→%d not ~16x", small[i].Kind, ms, ml)
		}
	}
}

func TestSumcheckLogGrowth(t *testing.T) {
	// The recomputation workload grows with L (§V-A: each round
	// re-derives inputs), producing Table IV's mild super-linearity.
	perN := func(logN int) float64 {
		inv := Inventory(logN, DefaultOptions())
		for _, task := range inv {
			if task.Kind == Sumcheck {
				return float64(task.Program.Elems(isa.FUMul)) / float64(int64(1)<<uint(logN))
			}
		}
		return 0
	}
	if perN(30) <= perN(24) {
		t.Fatal("sumcheck multiplies per constraint must grow with L")
	}
	ratio := perN(30) / perN(24)
	if ratio < 1.05 || ratio > 1.25 {
		t.Fatalf("L-growth ratio %.3f outside expected band", ratio)
	}
}

func TestRecomputeTradesComputeForMemory(t *testing.T) {
	on := Inventory(24, Options{Recompute: true, Reps: 3})
	off := Inventory(24, Options{Recompute: false, Reps: 3})
	var scOn, scOff Task
	for i := range on {
		if on[i].Kind == Sumcheck {
			scOn, scOff = on[i], off[i]
		}
	}
	if scOn.Program.Elems(isa.FUMul) <= scOff.Program.Elems(isa.FUMul) {
		t.Fatal("recompute must increase multiplies")
	}
	if scOn.Program.MemBytes() >= scOff.Program.MemBytes() {
		t.Fatal("recompute must decrease traffic")
	}
	saved := 1 - float64(scOn.Program.MemBytes())/float64(scOff.Program.MemBytes())
	if math.Abs(saved-SumcheckTrafficReduction()) > 0.01 {
		t.Fatalf("traffic saving %.3f disagrees with constant %.3f", saved, SumcheckTrafficReduction())
	}
	if math.Abs(SumcheckTrafficReduction()-0.31) > 0.01 {
		t.Fatalf("modeled reduction %.3f, paper says 0.31", SumcheckTrafficReduction())
	}
}

func TestSumcheckWorkingSetIs8MB(t *testing.T) {
	// §V-A: "This recomputation uses many intermediates, which is why
	// NoCap requires an 8 MB scratchpad."
	for _, task := range Inventory(24, DefaultOptions()) {
		if task.Kind == Sumcheck && task.Program.WorkingSetBytes != 8<<20 {
			t.Fatalf("sumcheck working set %d", task.Program.WorkingSetBytes)
		}
	}
}

func TestProgramsAreCompact(t *testing.T) {
	// Static scheduling with trip-counted branches keeps code small even
	// at 2^30 constraints (paper §IV-A).
	for _, task := range Inventory(30, DefaultOptions()) {
		if n := task.Program.NumInstrs(); n > 64 {
			t.Fatalf("%s compiled to %d instructions", task.Kind, n)
		}
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"low logN":  func() { Inventory(5, DefaultOptions()) },
		"high logN": func() { Inventory(50, DefaultOptions()) },
		"zero reps": func() { Inventory(24, Options{Reps: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKindStrings(t *testing.T) {
	want := []string{"spmv", "sumcheck", "rs-encode", "merkle", "poly-arith"}
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() != want[k] {
			t.Fatalf("Kind(%d) = %q", k, k.String())
		}
	}
}
