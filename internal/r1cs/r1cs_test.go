package r1cs

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
	"nocap/internal/poly"
)

// buildToy returns the circuit of paper Fig. 2:
// f(x,w) = x0 + w0 + x1*w1 + x1*w1*w2, asserted equal to a public output.
func buildToy(x0, x1, w0, w1, w2 uint64) (*Instance, []field.Element, []field.Element) {
	b := NewBuilder()
	vx0 := b.Public(field.New(x0))
	vx1 := b.Public(field.New(x1))
	vw0 := b.Secret(field.New(w0))
	vw1 := b.Secret(field.New(w1))
	vw2 := b.Secret(field.New(w2))
	t1 := b.Mul(FromVar(vx1), FromVar(vw1))         // x1*w1
	t2 := b.Mul(FromVar(t1), FromVar(vw2))          // x1*w1*w2
	sum := AddLC(AddLC(FromVar(vx0), FromVar(vw0)), // x0+w0
		AddLC(FromVar(t1), FromVar(t2))) // + t1 + t2
	expected := field.Add(field.Add(field.New(x0), field.New(w0)),
		field.Add(field.Mul(field.New(x1), field.New(w1)),
			field.Mul(field.Mul(field.New(x1), field.New(w1)), field.New(w2))))
	out := b.Public(expected)
	b.AssertEq(sum, FromVar(out))
	return b.Build()
}

func TestToyCircuitSatisfied(t *testing.T) {
	inst, io, w := buildToy(3, 5, 7, 11, 13)
	z := inst.AssembleZ(io, w)
	if ok, i := inst.Satisfied(z); !ok {
		t.Fatalf("constraint %d violated", i)
	}
}

func TestTamperedWitnessRejected(t *testing.T) {
	inst, io, w := buildToy(3, 5, 7, 11, 13)
	w[0] = field.Add(w[0], field.One)
	z := inst.AssembleZ(io, w)
	if ok, _ := inst.Satisfied(z); ok {
		t.Fatal("tampered witness accepted")
	}
}

func TestTamperedPublicRejected(t *testing.T) {
	inst, io, w := buildToy(3, 5, 7, 11, 13)
	io[0] = field.Add(io[0], field.One)
	z := inst.AssembleZ(io, w)
	if ok, _ := inst.Satisfied(z); ok {
		t.Fatal("tampered public input accepted")
	}
}

func TestPaddingShape(t *testing.T) {
	inst, _, _ := buildToy(1, 2, 3, 4, 5)
	if n := inst.NumVars(); n&(n-1) != 0 {
		t.Fatal("vars not power of two")
	}
	if m := inst.NumConstraints(); m&(m-1) != 0 {
		t.Fatal("constraints not power of two")
	}
	if inst.NumPublic != 3 {
		t.Fatalf("NumPublic = %d", inst.NumPublic)
	}
}

func TestSparseMatrixOps(t *testing.T) {
	m := NewSparseMatrix(4, 4)
	m.Add(0, 0, field.New(2))
	m.Add(0, 0, field.New(3)) // accumulate
	m.Add(1, 3, field.New(5))
	m.Add(2, 2, field.Zero) // dropped
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	x := []field.Element{field.New(1), field.New(1), field.New(1), field.New(2)}
	y := m.Mul(x)
	if y[0] != field.New(5) || y[1] != field.New(10) || y[2] != field.Zero {
		t.Fatalf("SpMV wrong: %v", y)
	}
	if m.Bandwidth() != 2 {
		t.Fatalf("bandwidth = %d", m.Bandwidth())
	}
}

func TestSparseMatrixMLEMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewSparseMatrix(8, 16)
	dense := make([]field.Element, 8*16)
	for k := 0; k < 20; k++ {
		r, c := rng.Intn(8), rng.Intn(16)
		v := field.New(rng.Uint64())
		m.Add(r, c, v)
		dense[r*16+c] = field.Add(dense[r*16+c], v)
	}
	rx := []field.Element{field.New(rng.Uint64()), field.New(rng.Uint64()), field.New(rng.Uint64())}
	ry := make([]field.Element, 4)
	for i := range ry {
		ry[i] = field.New(rng.Uint64())
	}
	got := m.MLEEvalWithTables(poly.EqTable(rx), poly.EqTable(ry))
	// Dense reference: MLE over 7 variables (3 row + 4 col, row bits high).
	want := poly.NewMLE(dense).Evaluate(append(append([]field.Element(nil), rx...), ry...))
	if got != want {
		t.Fatalf("sparse MLE %v != dense %v", got, want)
	}
}

func TestGadgetXor(t *testing.T) {
	for _, c := range []struct{ a, b, want uint64 }{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		b := NewBuilder()
		x := b.Secret(field.New(c.a))
		y := b.Secret(field.New(c.b))
		z := b.Xor(x, y)
		if b.Value(z) != field.New(c.want) {
			t.Fatalf("xor(%d,%d) = %v", c.a, c.b, b.Value(z))
		}
		inst, io, w := b.Build()
		if ok, i := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
			t.Fatalf("xor constraints violated at %d", i)
		}
	}
}

func TestGadgetBits(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(field.New(0b101101))
	bits := b.ToBits(FromVar(x), 8)
	wantBits := []uint64{1, 0, 1, 1, 0, 1, 0, 0}
	for i, bit := range bits {
		if b.Value(bit) != field.New(wantBits[i]) {
			t.Fatalf("bit %d = %v", i, b.Value(bit))
		}
	}
	// Recompose.
	y := b.Secret(b.Eval(FromBits(bits)))
	b.AssertEq(FromBits(bits), FromVar(y))
	if b.Value(y) != field.New(0b101101) {
		t.Fatal("recompose wrong")
	}
	inst, io, w := b.Build()
	if ok, i := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
		t.Fatalf("bit constraints violated at %d", i)
	}
}

func TestToBitsRejectsOverflow(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(field.New(256))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 256 in 8 bits")
		}
	}()
	b.ToBits(FromVar(x), 8)
}

func TestGadgetSelect(t *testing.T) {
	for _, cond := range []uint64{0, 1} {
		b := NewBuilder()
		c := b.Secret(field.New(cond))
		b.AssertBool(c)
		out := b.Select(c, Const(field.New(10)), Const(field.New(20)))
		want := field.New(20)
		if cond == 1 {
			want = field.New(10)
		}
		if b.Value(out) != want {
			t.Fatalf("select(%d) = %v", cond, b.Value(out))
		}
		inst, io, w := b.Build()
		if ok, _ := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
			t.Fatal("select constraints violated")
		}
	}
}

func TestGadgetIsZero(t *testing.T) {
	for _, v := range []uint64{0, 1, 12345} {
		b := NewBuilder()
		x := b.Secret(field.New(v))
		z := b.IsZero(FromVar(x))
		want := field.Zero
		if v == 0 {
			want = field.One
		}
		if b.Value(z) != want {
			t.Fatalf("iszero(%d) = %v", v, b.Value(z))
		}
		inst, io, w := b.Build()
		if ok, _ := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
			t.Fatal("iszero constraints violated")
		}
	}
}

func TestGadgetLessThan(t *testing.T) {
	cases := []struct {
		x, y uint64
		want uint64
	}{{3, 5, 1}, {5, 3, 0}, {7, 7, 0}, {0, 1, 1}, {1000, 999, 0}}
	for _, c := range cases {
		b := NewBuilder()
		x := b.Secret(field.New(c.x))
		y := b.Secret(field.New(c.y))
		lt := b.LessThan(FromVar(x), FromVar(y), 16)
		if b.Value(lt) != field.New(c.want) {
			t.Fatalf("%d < %d = %v, want %d", c.x, c.y, b.Value(lt), c.want)
		}
		inst, io, w := b.Build()
		if ok, _ := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
			t.Fatal("lessthan constraints violated")
		}
	}
}

func TestGadgetAdd32(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(field.New(0xFFFFFFFF))
	y := b.Secret(field.New(2))
	z := b.Secret(field.New(0x80000000))
	s := b.Add32(FromVar(x), FromVar(y), FromVar(z))
	want := (uint64(0xFFFFFFFF) + 2 + 0x80000000) & 0xFFFFFFFF
	if b.Value(s) != field.New(want) {
		t.Fatalf("add32 = %v, want %d", b.Value(s), want)
	}
	inst, io, w := b.Build()
	if ok, _ := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
		t.Fatal("add32 constraints violated")
	}
}

func TestGadgetInverse(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(field.New(7))
	inv := b.Inverse(FromVar(x))
	if field.Mul(b.Value(x), b.Value(inv)) != field.One {
		t.Fatal("inverse wrong")
	}
	inst, io, w := b.Build()
	if ok, _ := inst.Satisfied(inst.AssembleZ(io, w)); !ok {
		t.Fatal("inverse constraints violated")
	}
}

func TestMatrixEvalsAgainstDirect(t *testing.T) {
	inst, _, _ := buildToy(2, 3, 4, 5, 6)
	rng := rand.New(rand.NewSource(6))
	rx := make([]field.Element, inst.LogConstraints())
	ry := make([]field.Element, inst.LogVars())
	for i := range rx {
		rx[i] = field.New(rng.Uint64())
	}
	for i := range ry {
		ry[i] = field.New(rng.Uint64())
	}
	va, vb, vc := inst.MatrixEvals(rx, ry)
	eqR, eqC := poly.EqTable(rx), poly.EqTable(ry)
	if va != inst.A.MLEEvalWithTables(eqR, eqC) ||
		vb != inst.B.MLEEvalWithTables(eqR, eqC) ||
		vc != inst.C.MLEEvalWithTables(eqR, eqC) {
		t.Fatal("MatrixEvals disagrees with direct evaluation")
	}
}

func TestBuilderWireCounts(t *testing.T) {
	b := NewBuilder()
	if b.NumWires() != 1 || b.NumConstraints() != 0 {
		t.Fatal("fresh builder not empty")
	}
	b.Public(field.One)
	b.Secret(field.New(2))
	if b.NumWires() != 3 {
		t.Fatalf("NumWires = %d", b.NumWires())
	}
}

// Property: for random satisfied instances, random z perturbations are
// rejected.
func TestRandomCircuitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder()
		vars := []Variable{b.Secret(field.New(rng.Uint64()))}
		for i := 0; i < 15; i++ {
			switch rng.Intn(3) {
			case 0:
				vars = append(vars, b.Secret(field.New(rng.Uint64())))
			case 1:
				x := vars[rng.Intn(len(vars))]
				y := vars[rng.Intn(len(vars))]
				vars = append(vars, b.Mul(FromVar(x), FromVar(y)))
			case 2:
				x := vars[rng.Intn(len(vars))]
				y := vars[rng.Intn(len(vars))]
				s := b.Secret(b.Eval(AddLC(FromVar(x), FromVar(y))))
				b.AssertEq(AddLC(FromVar(x), FromVar(y)), FromVar(s))
				vars = append(vars, s)
			}
		}
		inst, io, w := b.Build()
		z := inst.AssembleZ(io, w)
		if ok, i := inst.Satisfied(z); !ok {
			t.Fatalf("trial %d: built instance unsatisfied at %d", trial, i)
		}
		// Perturb a random used z position.
		idx := rng.Intn(len(z))
		z[idx] = field.Add(z[idx], field.One)
		ok, _ := inst.Satisfied(z)
		// Perturbing an unused pad slot keeps it satisfied; detect usage.
		used := false
		for _, mat := range []*SparseMatrix{inst.A, inst.B, inst.C} {
			for _, row := range mat.Rows {
				for _, e := range row {
					if e.Col == idx {
						used = true
					}
				}
			}
		}
		if used && ok {
			t.Fatalf("trial %d: perturbed used wire %d accepted", trial, idx)
		}
	}
}
