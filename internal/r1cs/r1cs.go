// Package r1cs implements the rank-1 constraint system arithmetization
// (paper §II-B): sparse matrices A, B, C such that a wire-value vector z
// satisfies (Az) ∘ (Bz) = (Cz), together with the sparse matrix-vector
// products Spartan performs (the SpMV task of §V-A) and the sparse
// multilinear-extension evaluations the verifier needs.
//
// Layout convention (used throughout the repo): z = u ‖ w with |u| = |w| =
// NumVars/2; u = (1, io…, 0 pad) is public and w is the witness. The MLE
// of z splits on the top variable: z̃(y) = (1−y₀)·ũ(y') + y₀·w̃(y').
package r1cs

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"

	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/kernel"
	"nocap/internal/poly"
)

// Entry is one nonzero of a sparse matrix row. It is the kernel layer's
// shared sparse-row layout, so matrices feed kernel.SpMVCtx directly.
type Entry = kernel.Entry

// SparseMatrix is a row-major sparse matrix. R1CS matrices are usually
// permutation-like: O(1) nonzeros per row, banded around the diagonal
// (paper §V-A), which is what makes output-stationary SpMV effective.
type SparseMatrix struct {
	NumRows, NumCols int
	Rows             [][]Entry
}

// NewSparseMatrix returns an empty rows×cols matrix.
func NewSparseMatrix(rows, cols int) *SparseMatrix {
	return &SparseMatrix{NumRows: rows, NumCols: cols, Rows: make([][]Entry, rows)}
}

// Add accumulates v at (r, c).
func (m *SparseMatrix) Add(r, c int, v field.Element) {
	if r < 0 || r >= m.NumRows || c < 0 || c >= m.NumCols {
		panic(fmt.Sprintf("r1cs: entry (%d,%d) out of %dx%d", r, c, m.NumRows, m.NumCols))
	}
	if v.IsZero() {
		return
	}
	for i, e := range m.Rows[r] {
		if e.Col == c {
			m.Rows[r][i].Val = field.Add(e.Val, v)
			return
		}
	}
	m.Rows[r] = append(m.Rows[r], Entry{Col: c, Val: v})
}

// NNZ returns the number of stored nonzeros.
func (m *SparseMatrix) NNZ() int {
	n := 0
	for _, r := range m.Rows {
		n += len(r)
	}
	return n
}

// Mul computes y = M·x (the SpMV task, paper §V-A), parallelized across
// output rows (output-stationary, like NoCap's dataflow).
func (m *SparseMatrix) Mul(x []field.Element) []field.Element {
	y, err := m.MulCtx(context.Background(), x)
	if err != nil {
		panic(err)
	}
	return y
}

// MulCtx is Mul with cooperative cancellation: the row fan-out stops
// dispatching chunks once ctx is cancelled and drains its workers
// before returning.
func (m *SparseMatrix) MulCtx(ctx context.Context, x []field.Element) ([]field.Element, error) {
	y := make([]field.Element, m.NumRows)
	if err := m.MulIntoCtx(ctx, y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// MulIntoCtx computes y = M·x into caller-owned scratch (typically an
// arena checkout; len(y) must be NumRows, contents may be arbitrary).
// On error y must be discarded.
func (m *SparseMatrix) MulIntoCtx(ctx context.Context, y, x []field.Element) error {
	if len(x) != m.NumCols {
		panic("r1cs: SpMV dimension mismatch")
	}
	if len(y) != m.NumRows {
		panic("r1cs: SpMV output length mismatch")
	}
	return kernel.SpMVCtx(ctx, y, m.Rows, x)
}

// MLEEvalWithTables evaluates the matrix's multilinear extension at the
// point whose row/column eq-tables are given: Σ M[i,j]·eqRow[i]·eqCol[j].
// The verifier uses this for the final Spartan check; it is O(nnz).
func (m *SparseMatrix) MLEEvalWithTables(eqRow, eqCol []field.Element) field.Element {
	if len(eqRow) < m.NumRows || len(eqCol) < m.NumCols {
		panic("r1cs: eq table too small")
	}
	var acc field.Element
	for r, row := range m.Rows {
		if len(row) == 0 {
			continue
		}
		var rowAcc field.Element
		for _, e := range row {
			rowAcc = field.Add(rowAcc, field.Mul(e.Val, eqCol[e.Col]))
		}
		acc = field.Add(acc, field.Mul(eqRow[r], rowAcc))
	}
	return acc
}

// Bandwidth returns the maximum |col − row| over nonzeros: the matrix
// band the paper's SpMV scheduling exploits.
func (m *SparseMatrix) Bandwidth() int {
	maxBand := 0
	for r, row := range m.Rows {
		for _, e := range row {
			d := e.Col - r
			if d < 0 {
				d = -d
			}
			if d > maxBand {
				maxBand = d
			}
		}
	}
	return maxBand
}

// Instance is a padded R1CS statement: matrices over 2^logM rows and
// 2^logN columns, with the public half of z fixed by (1, PublicInputs).
type Instance struct {
	A, B, C *SparseMatrix
	// NumPublic is the number of io elements (excluding the leading 1).
	NumPublic int

	digest     hashfn.Digest
	digestDone bool
}

// digestBytes serializes the structural content of the instance (shapes
// and all matrix entries) that the digest commits to.
func (in *Instance) digestBytes() []byte {
	var buf []byte
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	put(uint64(in.NumConstraints()))
	put(uint64(in.NumVars()))
	put(uint64(in.NumPublic))
	for _, mat := range []*SparseMatrix{in.A, in.B, in.C} {
		for r, row := range mat.Rows {
			for _, e := range row {
				put(uint64(r))
				put(uint64(e.Col))
				put(e.Val.Uint64())
			}
		}
	}
	return buf
}

// Digest returns a structural hash of the instance (shapes and all matrix
// entries), used to bind proofs to the circuit being proven. The result
// is cached.
func (in *Instance) Digest() hashfn.Digest {
	if in.digestDone {
		return in.digest
	}
	in.digest = hashfn.Sum(in.digestBytes())
	in.digestDone = true
	return in.digest
}

// DigestEngine is Digest under an explicit hash engine. The default
// (sha3 or nil) engine returns the cached Digest; other engines hash the
// same serialization, so the statement binding a transcript absorbs is
// engine-specific even though every engine here computes SHA3-256.
func (in *Instance) DigestEngine(eng hashfn.Engine) hashfn.Digest {
	if eng == nil || eng.ID() == hashfn.IDSHA3 {
		return in.Digest()
	}
	return eng.Sum(in.digestBytes())
}

// NumConstraints returns the (padded) number of rows.
func (in *Instance) NumConstraints() int { return in.A.NumRows }

// NumVars returns the (padded) length of z.
func (in *Instance) NumVars() int { return in.A.NumCols }

// LogConstraints returns log2 of the padded constraint count.
func (in *Instance) LogConstraints() int {
	return bits.TrailingZeros(uint(in.NumConstraints()))
}

// LogVars returns log2 of the padded z length.
func (in *Instance) LogVars() int { return bits.TrailingZeros(uint(in.NumVars())) }

// validateShape panics if the instance is not power-of-two padded or the
// matrices disagree.
func (in *Instance) validateShape() {
	m, n := in.A.NumRows, in.A.NumCols
	if m == 0 || m&(m-1) != 0 || n < 2 || n&(n-1) != 0 {
		panic("r1cs: instance not power-of-two padded")
	}
	for _, mat := range []*SparseMatrix{in.B, in.C} {
		if mat.NumRows != m || mat.NumCols != n {
			panic("r1cs: matrix shapes disagree")
		}
	}
	if 1+in.NumPublic > n/2 {
		panic("r1cs: public inputs exceed the public half of z")
	}
}

// PublicVector returns u = (1, io, 0…) of length NumVars/2.
func (in *Instance) PublicVector(io []field.Element) []field.Element {
	if len(io) != in.NumPublic {
		panic("r1cs: wrong public input count")
	}
	u := make([]field.Element, in.NumVars()/2)
	u[0] = field.One
	copy(u[1:], io)
	return u
}

// AssembleZ concatenates the public vector and witness into z.
// len(witness) must be NumVars/2.
func (in *Instance) AssembleZ(io, witness []field.Element) []field.Element {
	z := make([]field.Element, in.NumVars())
	in.AssembleZInto(z, io, witness)
	return z
}

// AssembleZInto assembles z = (1, io, 0…) ‖ witness into caller-owned
// scratch (len(z) must be NumVars, contents may be arbitrary).
func (in *Instance) AssembleZInto(z, io, witness []field.Element) {
	half := in.NumVars() / 2
	if len(z) != in.NumVars() {
		panic("r1cs: z length mismatch")
	}
	if len(witness) != half {
		panic("r1cs: witness must fill the private half of z")
	}
	if len(io) != in.NumPublic {
		panic("r1cs: wrong public input count")
	}
	clear(z[:half])
	z[0] = field.One
	copy(z[1:], io)
	copy(z[half:], witness)
}

// Satisfied reports whether (Az) ∘ (Bz) = (Cz) and returns the index of
// the first violated constraint (or -1).
func (in *Instance) Satisfied(z []field.Element) (bool, int) {
	in.validateShape()
	az, bz, cz := in.A.Mul(z), in.B.Mul(z), in.C.Mul(z)
	for i := range az {
		if field.Mul(az[i], bz[i]) != cz[i] {
			return false, i
		}
	}
	return true, -1
}

// MatrixEvals evaluates Ã, B̃, C̃ at (rx, ry) — the verifier's final
// Spartan check (our substitution for the Spark sparse commitment,
// DESIGN.md §3.4). len(rx) = LogConstraints, len(ry) = LogVars.
func (in *Instance) MatrixEvals(rx, ry []field.Element) (va, vb, vc field.Element) {
	eqRow := poly.EqTable(rx)
	eqCol := poly.EqTable(ry)
	va = in.A.MLEEvalWithTables(eqRow, eqCol)
	vb = in.B.MLEEvalWithTables(eqRow, eqCol)
	vc = in.C.MLEEvalWithTables(eqRow, eqCol)
	return va, vb, vc
}

// Stats summarizes an instance for benchmarking output.
type Stats struct {
	Constraints int
	Vars        int
	NNZ         int
	MaxBand     int
}

// Stats returns instance statistics.
func (in *Instance) Stats() Stats {
	band := in.A.Bandwidth()
	if b := in.B.Bandwidth(); b > band {
		band = b
	}
	if b := in.C.Bandwidth(); b > band {
		band = b
	}
	return Stats{
		Constraints: in.NumConstraints(),
		Vars:        in.NumVars(),
		NNZ:         in.A.NNZ() + in.B.NNZ() + in.C.NNZ(),
		MaxBand:     band,
	}
}
