package r1cs

import (
	"testing"
	"testing/quick"

	"nocap/internal/field"
)

// TestQuickLCAlgebra: linear-combination operations agree with direct
// field arithmetic on the evaluation.
func TestQuickLCAlgebra(t *testing.T) {
	f := func(a, b, s, va, vb uint64) bool {
		bld := NewBuilder()
		x := bld.Secret(field.New(va))
		y := bld.Secret(field.New(vb))
		lcA := AddLC(ScaleLC(field.New(a), FromVar(x)), Const(field.New(s)))
		lcB := ScaleLC(field.New(b), FromVar(y))
		sum := bld.Eval(AddLC(lcA, lcB))
		diff := bld.Eval(SubLC(lcA, lcB))
		wantSum := field.Add(
			field.Add(field.Mul(field.New(a), field.New(va)), field.New(s)),
			field.Mul(field.New(b), field.New(vb)))
		wantDiff := field.Sub(
			field.Add(field.Mul(field.New(a), field.New(va)), field.New(s)),
			field.Mul(field.New(b), field.New(vb)))
		return sum == wantSum && diff == wantDiff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMulGadget: the Mul gadget's wire always carries the product
// and the built instance is always satisfied.
func TestQuickMulGadget(t *testing.T) {
	f := func(va, vb uint64) bool {
		bld := NewBuilder()
		x := bld.Secret(field.New(va))
		y := bld.Secret(field.New(vb))
		z := bld.Mul(FromVar(x), FromVar(y))
		if bld.Value(z) != field.Mul(field.New(va), field.New(vb)) {
			return false
		}
		inst, io, w := bld.Build()
		ok, _ := inst.Satisfied(inst.AssembleZ(io, w))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpMVLinearity: M(x + c·y) = Mx + c·My for random banded
// matrices.
func TestQuickSpMVLinearity(t *testing.T) {
	f := func(seed int64, c uint64) bool {
		m := NewSparseMatrix(8, 8)
		s := seed
		next := func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return uint64(s)
		}
		for i := 0; i < 16; i++ {
			m.Add(int(next()%8), int(next()%8), field.New(next()))
		}
		x := make([]field.Element, 8)
		y := make([]field.Element, 8)
		for i := range x {
			x[i], y[i] = field.New(next()), field.New(next())
		}
		cc := field.New(c)
		comb := make([]field.Element, 8)
		for i := range comb {
			comb[i] = field.Add(x[i], field.Mul(cc, y[i]))
		}
		mx, my, mc := m.Mul(x), m.Mul(y), m.Mul(comb)
		for i := range mc {
			if mc[i] != field.Add(mx[i], field.Mul(cc, my[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
