package r1cs

import (
	"fmt"

	"nocap/internal/field"
)

// Variable is a handle to one wire of the circuit being built. Variable 0
// is the constant 1.
type Variable int

// oneVar is the constant-1 wire.
const oneVar Variable = 0

// Term is coeff·variable inside a linear combination.
type Term struct {
	Coeff field.Element
	Var   Variable
}

// LC is a linear combination of wires. The zero value is the empty
// (zero) combination.
type LC []Term

// Const returns the constant linear combination v·1.
func Const(v field.Element) LC {
	if v.IsZero() {
		return nil
	}
	return LC{{Coeff: v, Var: oneVar}}
}

// FromVar returns the linear combination 1·v.
func FromVar(v Variable) LC { return LC{{Coeff: field.One, Var: v}} }

// AddLC returns a+b (terms concatenated; duplicates are merged when the
// constraint is emitted).
func AddLC(a, b LC) LC {
	out := make(LC, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// ScaleLC returns s·a.
func ScaleLC(s field.Element, a LC) LC {
	if s.IsZero() {
		return nil
	}
	out := make(LC, len(a))
	for i, t := range a {
		out[i] = Term{Coeff: field.Mul(s, t.Coeff), Var: t.Var}
	}
	return out
}

// SubLC returns a−b.
func SubLC(a, b LC) LC { return AddLC(a, ScaleLC(field.Neg(field.One), b)) }

// constraint is one R1CS row: a·b = c.
type constraint struct {
	a, b, c LC
}

// Builder constructs an R1CS instance and its witness simultaneously:
// every allocated wire carries its concrete value, so Build returns a
// satisfied (Instance, io, witness) triple directly. Gadget synthesis is
// data-oblivious, so the matrices depend only on the circuit structure.
type Builder struct {
	values      []field.Element // indexed by Variable; [0] = 1
	isPublic    []bool
	numPublic   int
	constraints []constraint
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	return &Builder{
		values:   []field.Element{field.One},
		isPublic: []bool{true},
	}
}

// NumConstraints returns the number of constraints emitted so far.
func (b *Builder) NumConstraints() int { return len(b.constraints) }

// NumWires returns the number of allocated wires (including the constant).
func (b *Builder) NumWires() int { return len(b.values) }

// Public allocates a public-input wire with the given value.
func (b *Builder) Public(v field.Element) Variable {
	b.values = append(b.values, v)
	b.isPublic = append(b.isPublic, true)
	b.numPublic++
	return Variable(len(b.values) - 1)
}

// Secret allocates a witness wire with the given value.
func (b *Builder) Secret(v field.Element) Variable {
	b.values = append(b.values, v)
	b.isPublic = append(b.isPublic, false)
	return Variable(len(b.values) - 1)
}

// Value returns the concrete value of a wire.
func (b *Builder) Value(v Variable) field.Element { return b.values[v] }

// Eval evaluates a linear combination on the current assignment.
func (b *Builder) Eval(lc LC) field.Element {
	var acc field.Element
	for _, t := range lc {
		acc = field.Add(acc, field.Mul(t.Coeff, b.values[t.Var]))
	}
	return acc
}

// Constrain emits the constraint a·b = c.
func (b *Builder) Constrain(a, bb, c LC) {
	b.constraints = append(b.constraints, constraint{a: a, b: bb, c: c})
}

// AssertEq emits a = c (as the constraint a·1 = c).
func (b *Builder) AssertEq(a, c LC) {
	b.Constrain(a, FromVar(oneVar), c)
}

// Mul allocates and returns a wire holding Eval(x)·Eval(y), constrained
// by x·y = out.
func (b *Builder) Mul(x, y LC) Variable {
	out := b.Secret(field.Mul(b.Eval(x), b.Eval(y)))
	b.Constrain(x, y, FromVar(out))
	return out
}

// Square returns a wire holding Eval(x)².
func (b *Builder) Square(x LC) Variable { return b.Mul(x, x) }

// Inverse allocates a wire holding 1/Eval(x), constrained by x·inv = 1.
// It panics if the value is zero (the circuit would be unsatisfiable).
func (b *Builder) Inverse(x LC) Variable {
	v := b.Eval(x)
	if v.IsZero() {
		panic("r1cs: inverse of zero wire")
	}
	inv := b.Secret(field.Inv(v))
	b.Constrain(x, FromVar(inv), Const(field.One))
	return inv
}

// AssertBool emits v·(v−1) = 0.
func (b *Builder) AssertBool(v Variable) {
	b.Constrain(FromVar(v), SubLC(FromVar(v), Const(field.One)), nil)
}

// ToBits decomposes x into n boolean wires, little-endian, constraining
// Σ bit_i·2^i = x and each bit boolean. n must be ≤ 63 so the
// decomposition is unique modulo the Goldilocks prime.
func (b *Builder) ToBits(x LC, n int) []Variable {
	if n <= 0 || n > 63 {
		panic("r1cs: bit width must be in [1,63]")
	}
	v := b.Eval(x).Uint64()
	if n < 63 && v >= 1<<uint(n) {
		panic(fmt.Sprintf("r1cs: value %d does not fit in %d bits", v, n))
	}
	bits := make([]Variable, n)
	var sum LC
	for i := 0; i < n; i++ {
		bit := b.Secret(field.New((v >> uint(i)) & 1))
		b.AssertBool(bit)
		bits[i] = bit
		sum = AddLC(sum, ScaleLC(field.New(uint64(1)<<uint(i)), FromVar(bit)))
	}
	b.AssertEq(sum, x)
	return bits
}

// FromBits returns the linear combination Σ bits[i]·2^i (free).
func FromBits(bits []Variable) LC {
	var sum LC
	for i, v := range bits {
		sum = AddLC(sum, ScaleLC(field.New(uint64(1)<<uint(i)), FromVar(v)))
	}
	return sum
}

// Xor returns a wire with a⊕b for boolean wires: a + b − 2ab.
func (b *Builder) Xor(x, y Variable) Variable {
	prod := b.Mul(FromVar(x), FromVar(y))
	out := b.Secret(b.Eval(SubLC(AddLC(FromVar(x), FromVar(y)), ScaleLC(field.Double(field.One), FromVar(prod)))))
	b.AssertEq(SubLC(AddLC(FromVar(x), FromVar(y)), ScaleLC(field.Double(field.One), FromVar(prod))), FromVar(out))
	return out
}

// And returns a wire with a∧b = ab.
func (b *Builder) And(x, y Variable) Variable { return b.Mul(FromVar(x), FromVar(y)) }

// Not returns the linear combination 1−x (free).
func Not(x Variable) LC { return SubLC(Const(field.One), FromVar(x)) }

// Select returns a wire with cond ? x : y for a boolean cond:
// y + cond·(x−y).
func (b *Builder) Select(cond Variable, x, y LC) Variable {
	d := b.Mul(FromVar(cond), SubLC(x, y))
	out := b.Secret(b.Eval(AddLC(y, FromVar(d))))
	b.AssertEq(AddLC(y, FromVar(d)), FromVar(out))
	return out
}

// IsZero returns a boolean wire z with z = 1 iff Eval(x) = 0, using the
// standard two-constraint gadget: x·inv = 1−z and x·z = 0.
func (b *Builder) IsZero(x LC) Variable {
	v := b.Eval(x)
	var zVal, invVal field.Element
	if v.IsZero() {
		zVal = field.One
	} else {
		invVal = field.Inv(v)
	}
	z := b.Secret(zVal)
	inv := b.Secret(invVal)
	b.Constrain(x, FromVar(inv), SubLC(Const(field.One), FromVar(z)))
	b.Constrain(x, FromVar(z), nil)
	return z
}

// LessThan returns a boolean wire with Eval(x) < Eval(y), for values
// known to fit in width bits (width ≤ 62). It decomposes y−x+2^width and
// inspects the carry bit.
func (b *Builder) LessThan(x, y LC, width int) Variable {
	if width <= 0 || width > 62 {
		panic("r1cs: LessThan width must be in [1,62]")
	}
	// d = x − y + 2^width ∈ [1, 2^(width+1)); bit `width` of d is 1 iff x ≥ y.
	d := AddLC(SubLC(x, y), Const(field.New(uint64(1)<<uint(width))))
	bits := b.ToBits(d, width+1)
	ge := bits[width] // x ≥ y
	lt := b.Secret(b.Eval(Not(ge)))
	b.AssertEq(Not(ge), FromVar(lt))
	return lt
}

// Add32 adds k values each known to fit in 32 bits and returns a wire
// holding the sum modulo 2^32 (the SHA-256 addition gadget). k·2^32 must
// fit in 62 bits (k ≤ 2^30).
func (b *Builder) Add32(terms ...LC) Variable {
	var sum LC
	for _, t := range terms {
		sum = AddLC(sum, t)
	}
	extra := 0
	for 1<<uint(extra) < len(terms) {
		extra++
	}
	bits := b.ToBits(sum, 32+extra)
	low := FromBits(bits[:32])
	out := b.Secret(b.Eval(low))
	b.AssertEq(low, FromVar(out))
	return out
}

// Build pads and freezes the circuit into an Instance plus the io and
// witness vectors. The returned instance always satisfies
// Satisfied(AssembleZ(io, witness)).
func (b *Builder) Build() (*Instance, []field.Element, []field.Element) {
	// z layout: u = (1, publics…, 0 pad) ‖ w = (secrets…, 0 pad).
	numSecret := len(b.values) - 1 - b.numPublic
	half := 2
	for half < 1+b.numPublic || half < numSecret {
		half <<= 1
	}
	n := 2 * half
	m := 2
	for m < len(b.constraints) {
		m <<= 1
	}

	// Wire → z index mapping.
	zIndex := make([]int, len(b.values))
	io := make([]field.Element, b.numPublic)
	witness := make([]field.Element, half)
	pubSeen, secSeen := 0, 0
	for v := range b.values {
		if b.isPublic[v] {
			if v == 0 {
				zIndex[v] = 0
				continue
			}
			pubSeen++
			zIndex[v] = pubSeen
			io[pubSeen-1] = b.values[v]
		} else {
			zIndex[v] = half + secSeen
			witness[secSeen] = b.values[v]
			secSeen++
		}
	}

	inst := &Instance{
		A:         NewSparseMatrix(m, n),
		B:         NewSparseMatrix(m, n),
		C:         NewSparseMatrix(m, n),
		NumPublic: b.numPublic,
	}
	emit := func(mat *SparseMatrix, row int, lc LC) {
		for _, t := range lc {
			mat.Add(row, zIndex[t.Var], t.Coeff)
		}
	}
	for i, c := range b.constraints {
		emit(inst.A, i, c.a)
		emit(inst.B, i, c.b)
		emit(inst.C, i, c.c)
	}
	inst.validateShape()
	return inst, io, witness
}
