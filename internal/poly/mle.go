// Package poly provides the polynomial machinery of the Spartan+Orion
// protocol: dense multilinear extensions (MLEs) over the boolean
// hypercube, eq-polynomial tables, the variable-folding operation at the
// heart of the sumcheck dynamic-programming algorithm (paper Listing 1),
// and Lagrange interpolation over the small domains used by sumcheck
// round polynomials.
//
// Variable-order convention: an L-variable MLE is stored as 2^L
// evaluations, with variable 0 bound to the MOST significant index bit.
// Folding ("fixing") variable 0 at r maps A[b] ← A[b]·(1−r) + A[b+n/2]·r,
// exactly the update in the paper's Listing 1.
package poly

import (
	"context"
	"fmt"
	"math/bits"

	"nocap/internal/field"
	"nocap/internal/kernel"
)

// MLE is a dense multilinear extension: the evaluations of an L-variate
// multilinear polynomial on {0,1}^L, with variable 0 ↔ the MSB of the
// index.
type MLE struct {
	evals []field.Element
}

// NewMLE wraps evals (length must be a power of two) as an MLE. The slice
// is retained, not copied.
func NewMLE(evals []field.Element) *MLE {
	n := len(evals)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("poly: MLE length %d is not a power of two", n))
	}
	return &MLE{evals: evals}
}

// NewMLEPadded copies v into a power-of-two-length evaluation vector of at
// least minLen, zero-padding the tail.
func NewMLEPadded(v []field.Element, minLen int) *MLE {
	n := 1
	for n < len(v) || n < minLen {
		n <<= 1
	}
	evals := make([]field.Element, n)
	copy(evals, v)
	return &MLE{evals: evals}
}

// NumVars returns L, the number of variables.
func (m *MLE) NumVars() int { return bits.TrailingZeros(uint(len(m.evals))) }

// Len returns 2^L.
func (m *MLE) Len() int { return len(m.evals) }

// Evals exposes the evaluation slice (shared, not a copy).
func (m *MLE) Evals() []field.Element { return m.evals }

// At returns the evaluation at hypercube index i.
func (m *MLE) At(i int) field.Element { return m.evals[i] }

// Clone returns a deep copy.
func (m *MLE) Clone() *MLE {
	return &MLE{evals: append([]field.Element(nil), m.evals...)}
}

// Fold fixes variable 0 (the MSB) to r, halving the table in place and
// returning the receiver. This is the DP array update of paper Listing 1:
// A[b] = A[b]·(1−rx) + A[b+s]·rx.
func (m *MLE) Fold(r field.Element) *MLE {
	return m.FoldCtx(context.Background(), r)
}

// FoldCtx is Fold with the fold's work attributed to the per-run stats
// collector carried by ctx (see kernel.WithCollector).
func (m *MLE) FoldCtx(ctx context.Context, r field.Element) *MLE {
	if len(m.evals) == 1 {
		panic("poly: cannot fold a 0-variable MLE")
	}
	// kernel.Fold reslices in place, keeping the original backing array
	// (and base pointer), so arena-owned evaluation slices can still be
	// returned by whoever checked them out.
	m.evals = kernel.FoldCtx(ctx, m.evals, r)
	return m
}

// Evaluate computes the MLE at an arbitrary point r ∈ F^L (len(r) must be
// L). It folds a scratch copy variable by variable: O(2^L) multiplies.
func (m *MLE) Evaluate(r []field.Element) field.Element {
	if len(r) != m.NumVars() {
		panic("poly: evaluate point dimension mismatch")
	}
	if len(r) == 0 {
		return m.evals[0]
	}
	scratch := m.Clone()
	for _, ri := range r {
		scratch.Fold(ri)
	}
	return scratch.evals[0]
}

// EqTable returns the 2^L-entry table of eq(r, b) for b ∈ {0,1}^L, where
// eq(r, b) = Π_k (r_k·b_k + (1−r_k)(1−b_k)) and r_0 pairs with the MSB of
// the index. Row i of the table is the Lagrange basis weight of hypercube
// vertex i at point r; Σ_i table[i]·f(i) = f̃(r).
func EqTable(r []field.Element) []field.Element {
	table := make([]field.Element, 1<<len(r))
	kernel.EqExpand(table, r)
	return table
}

// EqTableCtx is EqTable with the expansion's work attributed to the
// per-run stats collector carried by ctx.
func EqTableCtx(ctx context.Context, r []field.Element) []field.Element {
	table := make([]field.Element, 1<<len(r))
	kernel.EqExpandCtx(ctx, table, r)
	return table
}

// EqTableInto fills table (length exactly 2^len(r), typically arena
// scratch) with the same expansion as EqTable, without allocating.
func EqTableInto(table []field.Element, r []field.Element) {
	kernel.EqExpand(table, r)
}

// EqTableIntoCtx is EqTableInto with the expansion's work attributed to
// the per-run stats collector carried by ctx.
func EqTableIntoCtx(ctx context.Context, table []field.Element, r []field.Element) {
	kernel.EqExpandCtx(ctx, table, r)
}

// EqEval returns eq(a, b) for two points of equal dimension.
func EqEval(a, b []field.Element) field.Element {
	if len(a) != len(b) {
		panic("poly: eq dimension mismatch")
	}
	acc := field.One
	for i := range a {
		// a·b + (1−a)(1−b) = 1 − a − b + 2ab
		ab := field.Mul(a[i], b[i])
		term := field.Add(field.Sub(field.Sub(field.One, a[i]), b[i]), field.Double(ab))
		acc = field.Mul(acc, term)
	}
	return acc
}

// InterpolateEval returns q(x) for the unique polynomial q of degree
// ≤ len(vals)−1 with q(i) = vals[i] for i = 0..len(vals)−1, via Lagrange
// interpolation on the small domain {0,…,d}. Sumcheck verifiers use this
// to evaluate round polynomials at the challenge.
func InterpolateEval(vals []field.Element, x field.Element) field.Element {
	d := len(vals) - 1
	if d < 0 {
		panic("poly: empty interpolation")
	}
	// If x is in the domain, return directly (avoids zero denominators).
	if x.Uint64() <= uint64(d) {
		return vals[x.Uint64()]
	}
	// prefix[i] = Π_{j<i} (x−j), suffix[i] = Π_{j>i} (x−j).
	n := d + 1
	prefix := make([]field.Element, n)
	suffix := make([]field.Element, n)
	prefix[0] = field.One
	for i := 1; i < n; i++ {
		prefix[i] = field.Mul(prefix[i-1], field.Sub(x, field.New(uint64(i-1))))
	}
	suffix[n-1] = field.One
	for i := n - 2; i >= 0; i-- {
		suffix[i] = field.Mul(suffix[i+1], field.Sub(x, field.New(uint64(i+1))))
	}
	// denom_i = i! · (d−i)! · (−1)^(d−i)
	fact := make([]field.Element, n)
	fact[0] = field.One
	for i := 1; i < n; i++ {
		fact[i] = field.Mul(fact[i-1], field.New(uint64(i)))
	}
	var acc field.Element
	for i := 0; i < n; i++ {
		denom := field.Mul(fact[i], fact[d-i])
		if (d-i)%2 == 1 {
			denom = field.Neg(denom)
		}
		term := field.Mul(vals[i], field.Mul(prefix[i], suffix[i]))
		acc = field.Add(acc, field.Div(term, denom))
	}
	return acc
}

// UnivariateEval evaluates a coefficient-form polynomial at x via Horner.
func UnivariateEval(coeffs []field.Element, x field.Element) field.Element {
	var acc field.Element
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = field.Add(field.Mul(acc, x), coeffs[i])
	}
	return acc
}
