package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocap/internal/field"
)

func randElems(n int, seed int64) []field.Element {
	rng := rand.New(rand.NewSource(seed))
	v := make([]field.Element, n)
	for i := range v {
		v[i] = field.New(rng.Uint64())
	}
	return v
}

func TestMLEBasics(t *testing.T) {
	m := NewMLE(randElems(8, 1))
	if m.NumVars() != 3 || m.Len() != 8 {
		t.Fatalf("vars=%d len=%d", m.NumVars(), m.Len())
	}
	c := m.Clone()
	c.Evals()[0] = field.New(99)
	if m.At(0) == field.New(99) {
		t.Fatal("clone aliases original")
	}
}

func TestNewMLEPanics(t *testing.T) {
	for _, n := range []int{0, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d: expected panic", n)
				}
			}()
			NewMLE(make([]field.Element, n))
		}()
	}
}

func TestNewMLEPadded(t *testing.T) {
	m := NewMLEPadded(randElems(5, 2), 16)
	if m.Len() != 16 {
		t.Fatalf("len = %d, want 16", m.Len())
	}
	if m.At(5) != field.Zero || m.At(15) != field.Zero {
		t.Fatal("padding not zero")
	}
	if NewMLEPadded(randElems(9, 3), 0).Len() != 16 {
		t.Fatal("rounding up to power of two failed")
	}
}

func TestEvaluateOnHypercube(t *testing.T) {
	// MLE must agree with the table on boolean points (MSB-first order).
	evals := randElems(16, 4)
	m := NewMLE(evals)
	for i := 0; i < 16; i++ {
		pt := make([]field.Element, 4)
		for k := 0; k < 4; k++ {
			if i&(1<<(3-k)) != 0 { // variable 0 = MSB
				pt[k] = field.One
			}
		}
		if got := m.Evaluate(pt); got != evals[i] {
			t.Fatalf("Evaluate at vertex %d = %v, want %v", i, got, evals[i])
		}
	}
}

func TestFoldMatchesEvaluate(t *testing.T) {
	evals := randElems(32, 5)
	r := randElems(5, 6)
	m := NewMLE(evals)
	want := m.Evaluate(r)
	c := m.Clone()
	for _, ri := range r {
		c.Fold(ri)
	}
	if c.At(0) != want {
		t.Fatal("sequential folds disagree with Evaluate")
	}
}

func TestFoldListing1Semantics(t *testing.T) {
	// Fold must compute A[b]·(1−r) + A[b+s]·r, s = n/2 (paper Listing 1).
	evals := randElems(8, 7)
	r := field.New(12345)
	m := NewMLE(append([]field.Element(nil), evals...))
	m.Fold(r)
	for b := 0; b < 4; b++ {
		want := field.Add(
			field.Mul(evals[b], field.Sub(field.One, r)),
			field.Mul(evals[b+4], r))
		if m.At(b) != want {
			t.Fatalf("fold[%d] = %v, want %v", b, m.At(b), want)
		}
	}
}

func TestFoldZeroVarsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLE(randElems(1, 8)).Fold(field.One)
}

func TestEqTable(t *testing.T) {
	r := randElems(4, 9)
	table := EqTable(r)
	if len(table) != 16 {
		t.Fatalf("table len %d", len(table))
	}
	// table[i] must equal eq(r, bits(i)) with MSB-first pairing.
	for i := range table {
		pt := make([]field.Element, 4)
		for k := 0; k < 4; k++ {
			if i&(1<<(3-k)) != 0 {
				pt[k] = field.One
			}
		}
		if got := EqEval(r, pt); got != table[i] {
			t.Fatalf("EqTable[%d] = %v, want %v", i, table[i], got)
		}
	}
	// Σ_i eq(r, i) = 1 (partition of unity).
	var sum field.Element
	for _, v := range table {
		sum = field.Add(sum, v)
	}
	if sum != field.One {
		t.Fatalf("eq table sums to %v, want 1", sum)
	}
}

func TestEqTableIsMLEBasis(t *testing.T) {
	// f̃(r) = Σ_i eq(r,i)·f(i).
	evals := randElems(32, 10)
	r := randElems(5, 11)
	m := NewMLE(evals)
	table := EqTable(r)
	if got, want := field.InnerProduct(table, evals), m.Evaluate(r); got != want {
		t.Fatalf("basis identity fails: %v vs %v", got, want)
	}
}

func TestEqEvalSymmetry(t *testing.T) {
	f := func(a0, a1, b0, b1 uint64) bool {
		a := []field.Element{field.New(a0), field.New(a1)}
		b := []field.Element{field.New(b0), field.New(b1)}
		return EqEval(a, b) == EqEval(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqEvalOnBooleans(t *testing.T) {
	zero, one := field.Zero, field.One
	pts := [][]field.Element{{zero, zero}, {zero, one}, {one, zero}, {one, one}}
	for i, a := range pts {
		for j, b := range pts {
			got := EqEval(a, b)
			want := field.Zero
			if i == j {
				want = field.One
			}
			if got != want {
				t.Fatalf("eq(%d,%d) = %v", i, j, got)
			}
		}
	}
}

func TestInterpolateEval(t *testing.T) {
	// q(x) = 3 + 2x + x^3 on domain {0..3}, check at arbitrary points.
	coeffs := []field.Element{field.New(3), field.New(2), field.Zero, field.One}
	vals := make([]field.Element, 4)
	for i := range vals {
		vals[i] = UnivariateEval(coeffs, field.New(uint64(i)))
	}
	for _, x := range []field.Element{field.New(0), field.New(2), field.New(17), field.New(1 << 40)} {
		if got, want := InterpolateEval(vals, x), UnivariateEval(coeffs, x); got != want {
			t.Fatalf("interp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestInterpolateEvalRandomDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for d := 0; d <= 6; d++ {
		coeffs := randElems(d+1, int64(d)+50)
		vals := make([]field.Element, d+1)
		for i := range vals {
			vals[i] = UnivariateEval(coeffs, field.New(uint64(i)))
		}
		x := field.New(rng.Uint64())
		if got, want := InterpolateEval(vals, x), UnivariateEval(coeffs, x); got != want {
			t.Fatalf("degree %d interpolation wrong", d)
		}
	}
}

func TestEvaluateDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLE(randElems(8, 14)).Evaluate(randElems(2, 15))
}

func BenchmarkFold1M(b *testing.B) {
	m := NewMLE(randElems(1<<20, 16))
	r := field.New(777)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		b.StartTimer()
		c.Fold(r)
		b.StopTimer()
	}
}

func BenchmarkEqTable20(b *testing.B) {
	r := randElems(20, 17)
	for i := 0; i < b.N; i++ {
		EqTable(r)
	}
}
