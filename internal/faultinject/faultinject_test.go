package faultinject

import (
	"errors"
	"testing"
	"time"

	"nocap/internal/zkerr"
)


// Test points used by this file; registered once so Arm accepts them.
func init() {
	for _, p := range []string{"any.point", "stage.a", "stage.b", "p", "q"} {
		Register(p)
	}
}

func mustArm(t *testing.T, plan Plan) {
	t.Helper()
	if err := Arm(plan); err != nil {
		t.Fatalf("Arm(%+v): %v", plan, err)
	}
}

func TestUnarmedCheckIsNil(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Check("any.point"); err != nil {
			t.Fatalf("unarmed Check returned %v", err)
		}
	}
	if Fired() {
		t.Fatal("Fired true with nothing armed")
	}
}

func TestErrorKindFiresExactlyOnTrigger(t *testing.T) {
	defer Disarm()
	mustArm(t, Plan{Point: "stage.a", Kind: Error, Trigger: 3})
	for i := 1; i <= 5; i++ {
		// A different point never fires regardless of hit count.
		if err := Check("stage.b"); err != nil {
			t.Fatalf("wrong point fired on hit %d: %v", i, err)
		}
		err := Check("stage.a")
		if i == 3 {
			if err == nil {
				t.Fatalf("hit %d: trigger did not fire", i)
			}
			if !errors.Is(err, zkerr.ErrInternal) {
				t.Fatalf("default injected error not ErrInternal: %v", err)
			}
		} else if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", i, err)
		}
	}
	if !Fired() {
		t.Fatal("Fired false after the trigger hit")
	}
}

func TestErrorKindCustomError(t *testing.T) {
	defer Disarm()
	boom := errors.New("custom boom")
	mustArm(t, Plan{Point: "p", Kind: Error, Err: boom}) // Trigger 0 means first hit
	if err := Check("p"); !errors.Is(err, boom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	defer Disarm()
	mustArm(t, Plan{Point: "p", Kind: Panic, PanicValue: "detonate"})
	caught := func() (v any) {
		defer func() { v = recover() }()
		Check("p")
		return nil
	}()
	if caught != "detonate" {
		t.Fatalf("want injected panic value, got %v", caught)
	}
	if !Fired() {
		t.Fatal("panic plan not marked fired")
	}
}

func TestDelayKind(t *testing.T) {
	defer Disarm()
	mustArm(t, Plan{Point: "p", Kind: Delay, Sleep: 30 * time.Millisecond})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fired for only %v", d)
	}
	// Subsequent hits are free: the plan fires once.
	start = time.Now()
	Check("p")
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("second hit stalled %v after the plan already fired", d)
	}
}

func TestHookKind(t *testing.T) {
	defer Disarm()
	called := 0
	mustArm(t, Plan{Point: "p", Kind: Hook, Trigger: 2, Hook: func() error {
		called++
		return nil
	}})
	Check("p")
	Check("p")
	Check("p")
	if called != 1 {
		t.Fatalf("hook called %d times, want exactly 1", called)
	}
}

func TestRecordingTraceAndHitCounts(t *testing.T) {
	StartRecording()
	Check("a")
	Check("b")
	Check("a")
	trace := StopRecording()
	want := []string{"a", "b", "a"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	counts := HitCounts(trace)
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts %v", counts)
	}
	// While recording, nothing fires and Check never errors.
	if Fired() {
		t.Fatal("recording session reported fired")
	}
	if got := StopRecording(); got != nil {
		t.Fatalf("second StopRecording returned %v", got)
	}
}

func TestRandomPlanDeterministicAndInRange(t *testing.T) {
	trace := []string{"x", "y", "x", "z", "x", "y"}
	for _, p := range trace {
		Register(p)
	}
	counts := HitCounts(trace)
	kinds := []Kind{Error, Panic, Hook}
	for seed := int64(0); seed < 50; seed++ {
		p1, err1 := RandomPlan(seed, trace, kinds)
		p2, err2 := RandomPlan(seed, trace, kinds)
		if err1 != nil || err2 != nil {
			t.Fatalf("RandomPlan errored on a registered trace: %v / %v", err1, err2)
		}
		if p1.Point != p2.Point || p1.Kind != p2.Kind || p1.Trigger != p2.Trigger {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, p1, p2)
		}
		if counts[p1.Point] == 0 {
			t.Fatalf("seed %d chose point %q not in trace", seed, p1.Point)
		}
		if p1.Trigger < 1 || p1.Trigger > counts[p1.Point] {
			t.Fatalf("seed %d trigger %d outside [1,%d] for %q", seed, p1.Trigger, counts[p1.Point], p1.Point)
		}
		found := false
		for _, k := range kinds {
			if p1.Kind == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d chose kind %v outside the requested set", seed, p1.Kind)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Error: "error", Panic: "panic", Delay: "delay", Hook: "hook", Kind(0): "none"} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestArmReplacesAndDisarmRestoresFastPath(t *testing.T) {
	mustArm(t, Plan{Point: "p", Kind: Error})
	mustArm(t, Plan{Point: "q", Kind: Error})
	if err := Check("p"); err != nil {
		t.Fatalf("replaced plan still fired: %v", err)
	}
	if err := Check("q"); err == nil {
		t.Fatal("re-armed plan did not fire")
	}
	Disarm()
	if err := Check("q"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
}

// TestPointsListsRegistrations pins the registry contract: Register is
// idempotent, Points is sorted and contains every registered name, and
// Registered distinguishes declared from undeclared points.
func TestPointsListsRegistrations(t *testing.T) {
	Register("zz.test.point")
	Register("zz.test.point") // idempotent
	if !Registered("zz.test.point") {
		t.Fatal("registered point not reported as registered")
	}
	if Registered("zz.never.registered") {
		t.Fatal("unregistered point reported as registered")
	}
	pts := Points()
	found := false
	for i, p := range pts {
		if p == "zz.test.point" {
			found = true
		}
		if i > 0 && pts[i-1] > p {
			t.Fatalf("Points() not sorted: %q before %q", pts[i-1], p)
		}
	}
	if !found {
		t.Fatalf("Points() missing registered point: %v", pts)
	}
}

// TestArmUnknownPointFailsFast is the regression test for the silent
// never-fires bug: arming a plan at a point no package registered must
// be refused, not accepted and ignored.
func TestArmUnknownPointFailsFast(t *testing.T) {
	defer Disarm()
	err := Arm(Plan{Point: "no.such.point", Kind: Error})
	if err == nil {
		t.Fatal("Arm accepted an unknown injection point")
	}
	// The refused plan must not have been installed.
	if Check("no.such.point") != nil {
		t.Fatal("refused plan fired anyway")
	}
	if Fired() {
		t.Fatal("refused plan reported fired")
	}
}

// TestRandomPlanRejectsUnknownTracePoints: a trace naming a point that
// was never registered cannot have come from the current pipeline, so
// plan derivation must fail rather than build a vacuous plan.
func TestRandomPlanRejectsUnknownTracePoints(t *testing.T) {
	if _, err := RandomPlan(1, []string{"p", "no.such.point"}, []Kind{Error}); err == nil {
		t.Fatal("RandomPlan accepted a trace with an unregistered point")
	}
	if _, err := RandomPlan(1, nil, []Kind{Error}); err == nil {
		t.Fatal("RandomPlan accepted an empty trace")
	}
	if _, err := RandomPlan(1, []string{"p"}, nil); err == nil {
		t.Fatal("RandomPlan accepted an empty kind set")
	}
}

// TestMustArmPanicsOnUnknownPoint pins the test-helper contract.
func TestMustArmPanicsOnUnknownPoint(t *testing.T) {
	defer Disarm()
	defer func() {
		if recover() == nil {
			t.Fatal("MustArm did not panic on an unknown point")
		}
	}()
	MustArm(Plan{Point: "still.not.registered", Kind: Error})
}

// TestCountSustainsFaultThenClears: Count = N fires the fault on hits
// [Trigger, Trigger+N-1] and lets the next hit succeed — a sustained
// disk outage that eventually clears. The default Count keeps the
// classic fire-once behaviour.
func TestCountSustainsFaultThenClears(t *testing.T) {
	defer Disarm()
	mustArm(t, Plan{Point: "stage.a", Kind: Error, Trigger: 2, Count: 3})
	for i := 1; i <= 6; i++ {
		err := Check("stage.a")
		if i >= 2 && i <= 4 {
			if err == nil {
				t.Fatalf("hit %d inside the outage window did not fire", i)
			}
		} else if err != nil {
			t.Fatalf("hit %d outside the outage window fired: %v", i, err)
		}
		if got, want := Fired(), i >= 2; got != want {
			t.Fatalf("Fired after hit %d = %v, want %v", i, got, want)
		}
	}
}
