package faultinject

import (
	"errors"
	"testing"
	"time"

	"nocap/internal/zkerr"
)

func TestUnarmedCheckIsNil(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Check("any.point"); err != nil {
			t.Fatalf("unarmed Check returned %v", err)
		}
	}
	if Fired() {
		t.Fatal("Fired true with nothing armed")
	}
}

func TestErrorKindFiresExactlyOnTrigger(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "stage.a", Kind: Error, Trigger: 3})
	for i := 1; i <= 5; i++ {
		// A different point never fires regardless of hit count.
		if err := Check("stage.b"); err != nil {
			t.Fatalf("wrong point fired on hit %d: %v", i, err)
		}
		err := Check("stage.a")
		if i == 3 {
			if err == nil {
				t.Fatalf("hit %d: trigger did not fire", i)
			}
			if !errors.Is(err, zkerr.ErrInternal) {
				t.Fatalf("default injected error not ErrInternal: %v", err)
			}
		} else if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", i, err)
		}
	}
	if !Fired() {
		t.Fatal("Fired false after the trigger hit")
	}
}

func TestErrorKindCustomError(t *testing.T) {
	defer Disarm()
	boom := errors.New("custom boom")
	Arm(Plan{Point: "p", Kind: Error, Err: boom}) // Trigger 0 means first hit
	if err := Check("p"); !errors.Is(err, boom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: Panic, PanicValue: "detonate"})
	caught := func() (v any) {
		defer func() { v = recover() }()
		Check("p")
		return nil
	}()
	if caught != "detonate" {
		t.Fatalf("want injected panic value, got %v", caught)
	}
	if !Fired() {
		t.Fatal("panic plan not marked fired")
	}
}

func TestDelayKind(t *testing.T) {
	defer Disarm()
	Arm(Plan{Point: "p", Kind: Delay, Sleep: 30 * time.Millisecond})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fired for only %v", d)
	}
	// Subsequent hits are free: the plan fires once.
	start = time.Now()
	Check("p")
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("second hit stalled %v after the plan already fired", d)
	}
}

func TestHookKind(t *testing.T) {
	defer Disarm()
	called := 0
	Arm(Plan{Point: "p", Kind: Hook, Trigger: 2, Hook: func() error {
		called++
		return nil
	}})
	Check("p")
	Check("p")
	Check("p")
	if called != 1 {
		t.Fatalf("hook called %d times, want exactly 1", called)
	}
}

func TestRecordingTraceAndHitCounts(t *testing.T) {
	StartRecording()
	Check("a")
	Check("b")
	Check("a")
	trace := StopRecording()
	want := []string{"a", "b", "a"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	counts := HitCounts(trace)
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts %v", counts)
	}
	// While recording, nothing fires and Check never errors.
	if Fired() {
		t.Fatal("recording session reported fired")
	}
	if got := StopRecording(); got != nil {
		t.Fatalf("second StopRecording returned %v", got)
	}
}

func TestRandomPlanDeterministicAndInRange(t *testing.T) {
	trace := []string{"x", "y", "x", "z", "x", "y"}
	counts := HitCounts(trace)
	kinds := []Kind{Error, Panic, Hook}
	for seed := int64(0); seed < 50; seed++ {
		p1 := RandomPlan(seed, trace, kinds)
		p2 := RandomPlan(seed, trace, kinds)
		if p1.Point != p2.Point || p1.Kind != p2.Kind || p1.Trigger != p2.Trigger {
			t.Fatalf("seed %d not deterministic: %+v vs %+v", seed, p1, p2)
		}
		if counts[p1.Point] == 0 {
			t.Fatalf("seed %d chose point %q not in trace", seed, p1.Point)
		}
		if p1.Trigger < 1 || p1.Trigger > counts[p1.Point] {
			t.Fatalf("seed %d trigger %d outside [1,%d] for %q", seed, p1.Trigger, counts[p1.Point], p1.Point)
		}
		found := false
		for _, k := range kinds {
			if p1.Kind == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d chose kind %v outside the requested set", seed, p1.Kind)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Error: "error", Panic: "panic", Delay: "delay", Hook: "hook", Kind(0): "none"} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestArmReplacesAndDisarmRestoresFastPath(t *testing.T) {
	Arm(Plan{Point: "p", Kind: Error})
	Arm(Plan{Point: "q", Kind: Error})
	if err := Check("p"); err != nil {
		t.Fatalf("replaced plan still fired: %v", err)
	}
	if err := Check("q"); err == nil {
		t.Fatal("re-armed plan did not fire")
	}
	Disarm()
	if err := Check("q"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
}
