// Package faultinject is a deterministic, seedable fault-injection
// registry for chaos-testing the proving pipeline. Long-running stages
// (sumcheck rounds, row encodes, Merkle builds, SpMV, worker-pool chunk
// bodies) call Check with a stable point name at each stage boundary;
// when a test has armed a Plan naming that point, the Nth hit fires an
// injected error, a panic, an artificial delay, or an arbitrary hook
// (used by cancellation-timing tests to cancel a context at an exact
// pipeline position).
//
// When nothing is armed, Check is a single atomic pointer load and a
// nil comparison — the production build pays no measurable cost, and
// injection points are only placed at chunk/stage granularity, never
// inside per-element arithmetic loops.
//
// Determinism: triggers are count-based ("the Nth time execution
// reaches point P"), not time- or scheduler-based, so a given
// {point, kind, trigger} cell of a chaos matrix fails the pipeline at
// the same logical position every run. RandomPlan derives a Plan from
// an integer seed for sweep tests. The registry is process-global
// (matching the pipeline's package-level entry points), so tests that
// arm it must not run in parallel with each other.
package faultinject

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nocap/internal/zkerr"
)

// Kind selects what an armed Plan does when it fires.
type Kind uint8

const (
	// Error makes Check return Plan.Err (or a default
	// zkerr.ErrInternal-wrapped error) from the injection point.
	Error Kind = iota + 1
	// Panic makes Check panic with Plan.PanicValue (or a default
	// string), exercising the pipeline's panic-containment layers.
	Panic
	// Delay makes Check sleep for Plan.Sleep and then continue,
	// simulating a stalled stage (combine with a context deadline to
	// force DeadlineExceeded at a chosen point).
	Delay
	// Hook makes Check call Plan.Hook and return its error. Hooks that
	// cancel a context and return nil cancel the pipeline at an exact
	// injection point while letting it run to its next checkpoint.
	Hook
)

// String names the kind for subtest labels.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Hook:
		return "hook"
	}
	return "none"
}

// Plan describes one fault: fire Kind at the Trigger-th hit of Point.
type Plan struct {
	// Point is the injection-point name to fire at.
	Point string
	// Kind is what happens when the plan fires.
	Kind Kind
	// Trigger is the 1-based hit count of Point on which to fire; 0
	// means 1 (the first hit).
	Trigger uint64
	// Err is returned for Kind == Error; nil selects a default error
	// wrapping zkerr.ErrInternal.
	Err error
	// PanicValue is the panic argument for Kind == Panic; nil selects a
	// default string naming the point.
	PanicValue any
	// Sleep is the stall duration for Kind == Delay.
	Sleep time.Duration
	// Hook runs for Kind == Hook; its error (possibly nil) is returned
	// from Check.
	Hook func() error
}

// injector is the armed state: either a recording session or one Plan.
type injector struct {
	mu        sync.Mutex
	plan      Plan
	counts    map[string]uint64
	recording bool
	trace     []string
	fired     bool
}

var active atomic.Pointer[injector]

// Arm installs the plan, replacing any armed plan or recording session.
// Hit counters restart from zero.
func Arm(plan Plan) {
	active.Store(&injector{plan: plan, counts: make(map[string]uint64)})
}

// Disarm removes any armed plan or recording session, restoring the
// zero-cost path.
func Disarm() {
	active.Store(nil)
}

// Fired reports whether the armed plan has fired. False if nothing is
// armed. Chaos tests assert it after a run so a cell whose point was
// never reached (e.g. a verify-path point during prove) fails loudly
// instead of passing vacuously.
func Fired() bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired
}

// StartRecording arms a recorder: every Check hit is appended to a
// trace instead of firing anything.
func StartRecording() {
	active.Store(&injector{recording: true, counts: make(map[string]uint64)})
}

// StopRecording disarms the recorder and returns the ordered list of
// point names hit since StartRecording (one entry per hit, so
// duplicates give per-point hit counts). Returns nil if no recorder was
// armed.
func StopRecording() []string {
	inj := active.Swap(nil)
	if inj == nil || !inj.recording {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.trace
}

// HitCounts aggregates a StopRecording trace into per-point totals.
func HitCounts(trace []string) map[string]uint64 {
	counts := make(map[string]uint64)
	for _, p := range trace {
		counts[p]++
	}
	return counts
}

// Check is the injection point. It is called with a stable name at
// every stage boundary; with nothing armed it returns nil after one
// atomic load. With a plan armed it counts the hit and fires the
// plan's fault if this is the trigger hit.
func Check(point string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.check(point)
}

func (inj *injector) check(point string) error {
	inj.mu.Lock()
	inj.counts[point]++
	n := inj.counts[point]
	if inj.recording {
		inj.trace = append(inj.trace, point)
		inj.mu.Unlock()
		return nil
	}
	p := inj.plan
	trigger := p.Trigger
	if trigger == 0 {
		trigger = 1
	}
	if inj.fired || p.Point != point || n != trigger {
		inj.mu.Unlock()
		return nil
	}
	inj.fired = true
	inj.mu.Unlock()

	switch p.Kind {
	case Error:
		if p.Err != nil {
			return p.Err
		}
		return zkerr.Internalf("faultinject: injected error at %s (hit %d)", point, n)
	case Panic:
		v := p.PanicValue
		if v == nil {
			v = "faultinject: injected panic at " + point
		}
		panic(v)
	case Delay:
		time.Sleep(p.Sleep)
	case Hook:
		if p.Hook != nil {
			return p.Hook()
		}
	}
	return nil
}

// RandomPlan derives a deterministic Plan from seed: a point drawn from
// points, a kind from kinds, and a trigger in [1, counts[point]]. The
// same (seed, trace) always yields the same plan, so sweep tests can
// enumerate seeds and stay reproducible.
func RandomPlan(seed int64, trace []string, kinds []Kind) Plan {
	counts := HitCounts(trace)
	points := make([]string, 0, len(counts))
	for p := range counts {
		points = append(points, p)
	}
	// Map iteration order is random; sort for determinism.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j] < points[j-1]; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	rng := rand.New(rand.NewSource(seed))
	point := points[rng.Intn(len(points))]
	return Plan{
		Point:   point,
		Kind:    kinds[rng.Intn(len(kinds))],
		Trigger: 1 + uint64(rng.Int63n(int64(counts[point]))),
	}
}
