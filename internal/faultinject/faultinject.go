// Package faultinject is a deterministic, seedable fault-injection
// registry for chaos-testing the proving pipeline. Long-running stages
// (sumcheck rounds, row encodes, Merkle builds, SpMV, worker-pool chunk
// bodies) call Check with a stable point name at each stage boundary;
// when a test has armed a Plan naming that point, the Nth hit fires an
// injected error, a panic, an artificial delay, or an arbitrary hook
// (used by cancellation-timing tests to cancel a context at an exact
// pipeline position).
//
// When nothing is armed, Check is a single atomic pointer load and a
// nil comparison — the production build pays no measurable cost, and
// injection points are only placed at chunk/stage granularity, never
// inside per-element arithmetic loops.
//
// Determinism: triggers are count-based ("the Nth time execution
// reaches point P"), not time- or scheduler-based, so a given
// {point, kind, trigger} cell of a chaos matrix fails the pipeline at
// the same logical position every run. RandomPlan derives a Plan from
// an integer seed for sweep tests. The registry is process-global
// (matching the pipeline's package-level entry points), so tests that
// arm it must not run in parallel with each other.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nocap/internal/zkerr"
)

// registry is the set of injection-point names declared by the
// pipeline's packages. Arm and RandomPlan refuse points that are not in
// it: a plan naming a point no Check call site can ever hit would
// otherwise arm successfully and silently never fire, which is exactly
// the failure mode that makes a chaos matrix rot (a renamed stage
// checkpoint turns its cells vacuous instead of red).
var registry = struct {
	mu    sync.Mutex
	names map[string]struct{}
}{names: make(map[string]struct{})}

// Register declares an injection-point name and returns it, so call
// sites bind the registered name and the Check argument in one place:
//
//	var fiForward = faultinject.Register("ntt.forward")
//	...
//	if err := faultinject.Check(fiForward); err != nil { ... }
//
// Registration is idempotent. Empty names panic: they can never match a
// Check call and would poison Points().
func Register(name string) string {
	if name == "" {
		panic("faultinject: Register with empty point name")
	}
	registry.mu.Lock()
	registry.names[name] = struct{}{}
	registry.mu.Unlock()
	return name
}

// Registered reports whether name was declared with Register.
func Registered(name string) bool {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	_, ok := registry.names[name]
	return ok
}

// Points returns the sorted list of registered injection-point names.
func Points() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.names))
	for name := range registry.names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Kind selects what an armed Plan does when it fires.
type Kind uint8

const (
	// Error makes Check return Plan.Err (or a default
	// zkerr.ErrInternal-wrapped error) from the injection point.
	Error Kind = iota + 1
	// Panic makes Check panic with Plan.PanicValue (or a default
	// string), exercising the pipeline's panic-containment layers.
	Panic
	// Delay makes Check sleep for Plan.Sleep and then continue,
	// simulating a stalled stage (combine with a context deadline to
	// force DeadlineExceeded at a chosen point).
	Delay
	// Hook makes Check call Plan.Hook and return its error. Hooks that
	// cancel a context and return nil cancel the pipeline at an exact
	// injection point while letting it run to its next checkpoint.
	Hook
)

// String names the kind for subtest labels.
func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Hook:
		return "hook"
	}
	return "none"
}

// Plan describes one fault: fire Kind at the Trigger-th hit of Point,
// and — when Count > 1 — keep firing for that many consecutive hits.
type Plan struct {
	// Point is the injection-point name to fire at.
	Point string
	// Kind is what happens when the plan fires.
	Kind Kind
	// Trigger is the 1-based hit count of Point on which to fire; 0
	// means 1 (the first hit).
	Trigger uint64
	// Count is how many consecutive hits fire, starting at Trigger; 0
	// means 1 (the classic fire-once fault). A sustained disk outage is
	// Count = N: hits [Trigger, Trigger+N-1] all fail, the next one
	// succeeds — the fault "clears".
	Count uint64
	// Err is returned for Kind == Error; nil selects a default error
	// wrapping zkerr.ErrInternal.
	Err error
	// PanicValue is the panic argument for Kind == Panic; nil selects a
	// default string naming the point.
	PanicValue any
	// Sleep is the stall duration for Kind == Delay.
	Sleep time.Duration
	// Hook runs for Kind == Hook; its error (possibly nil) is returned
	// from Check.
	Hook func() error
}

// injector is the armed state: either a recording session or one Plan.
type injector struct {
	mu        sync.Mutex
	plan      Plan
	counts    map[string]uint64
	recording bool
	trace     []string
	fired     bool
}

var active atomic.Pointer[injector]

// Arm installs the plan, replacing any armed plan or recording session.
// Hit counters restart from zero. A plan naming a point that no package
// registered is refused: it could never fire, and a chaos cell that
// passes because its fault never happened is worse than one that fails.
func Arm(plan Plan) error {
	if !Registered(plan.Point) {
		return zkerr.Usagef("faultinject: unknown injection point %q (registered points: %v)", plan.Point, Points())
	}
	active.Store(&injector{plan: plan, counts: make(map[string]uint64)})
	return nil
}

// Disarm removes any armed plan or recording session, restoring the
// zero-cost path.
func Disarm() {
	active.Store(nil)
}

// Fired reports whether the armed plan has fired. False if nothing is
// armed. Chaos tests assert it after a run so a cell whose point was
// never reached (e.g. a verify-path point during prove) fails loudly
// instead of passing vacuously.
func Fired() bool {
	inj := active.Load()
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired
}

// StartRecording arms a recorder: every Check hit is appended to a
// trace instead of firing anything.
func StartRecording() {
	active.Store(&injector{recording: true, counts: make(map[string]uint64)})
}

// StopRecording disarms the recorder and returns the ordered list of
// point names hit since StartRecording (one entry per hit, so
// duplicates give per-point hit counts). Returns nil if no recorder was
// armed.
func StopRecording() []string {
	inj := active.Swap(nil)
	if inj == nil || !inj.recording {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.trace
}

// HitCounts aggregates a StopRecording trace into per-point totals.
func HitCounts(trace []string) map[string]uint64 {
	counts := make(map[string]uint64)
	for _, p := range trace {
		counts[p]++
	}
	return counts
}

// Check is the injection point. It is called with a stable name at
// every stage boundary; with nothing armed it returns nil after one
// atomic load. With a plan armed it counts the hit and fires the
// plan's fault if this is the trigger hit.
func Check(point string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.check(point)
}

func (inj *injector) check(point string) error {
	inj.mu.Lock()
	inj.counts[point]++
	n := inj.counts[point]
	if inj.recording {
		inj.trace = append(inj.trace, point)
		inj.mu.Unlock()
		return nil
	}
	p := inj.plan
	trigger := p.Trigger
	if trigger == 0 {
		trigger = 1
	}
	count := p.Count
	if count == 0 {
		count = 1
	}
	if p.Point != point || n < trigger || n >= trigger+count {
		inj.mu.Unlock()
		return nil
	}
	inj.fired = true
	inj.mu.Unlock()

	switch p.Kind {
	case Error:
		if p.Err != nil {
			return p.Err
		}
		return zkerr.Internalf("faultinject: injected error at %s (hit %d)", point, n)
	case Panic:
		v := p.PanicValue
		if v == nil {
			v = "faultinject: injected panic at " + point
		}
		panic(v)
	case Delay:
		time.Sleep(p.Sleep)
	case Hook:
		if p.Hook != nil {
			return p.Hook()
		}
	}
	return nil
}

// RandomPlan derives a deterministic Plan from seed: a point drawn from
// points, a kind from kinds, and a trigger in [1, counts[point]]. The
// same (seed, trace) always yields the same plan, so sweep tests can
// enumerate seeds and stay reproducible. Traces containing a point name
// no package registered are refused outright — such a trace cannot have
// come from a recording session against the current pipeline, so the
// sweep it would drive is stale.
func RandomPlan(seed int64, trace []string, kinds []Kind) (Plan, error) {
	if len(trace) == 0 {
		return Plan{}, zkerr.Usagef("faultinject: RandomPlan on an empty trace")
	}
	if len(kinds) == 0 {
		return Plan{}, zkerr.Usagef("faultinject: RandomPlan with no kinds")
	}
	counts := HitCounts(trace)
	points := make([]string, 0, len(counts))
	for p := range counts {
		if !Registered(p) {
			return Plan{}, zkerr.Usagef("faultinject: trace names unknown injection point %q (registered points: %v)", p, Points())
		}
		points = append(points, p)
	}
	// Map iteration order is random; sort for determinism.
	sort.Strings(points)
	rng := rand.New(rand.NewSource(seed))
	point := points[rng.Intn(len(points))]
	return Plan{
		Point:   point,
		Kind:    kinds[rng.Intn(len(kinds))],
		Trigger: 1 + uint64(rng.Int63n(int64(counts[point]))),
	}, nil
}

// MustArm is Arm for tests whose plans are built from registered
// constants; it panics on the errors Arm would return.
func MustArm(plan Plan) {
	if err := Arm(plan); err != nil {
		panic(fmt.Sprintf("faultinject: %v", err))
	}
}
