// Package sim is the cycle-level NoCap simulator (paper §VII: "A
// simulator executes this program, keeping track of the FU and memory
// bandwidth usage of each task … models the timing of each task by using
// timing models for the functional units and main memory").
//
// Tasks run one at a time (§V). Within a task, NoCap's static schedule
// and decoupled data orchestration overlap every functional unit with
// memory, so task time is the occupancy of its bottleneck resource:
// per-FU cycles are stream elements divided by lane throughput, memory
// cycles are traffic divided by HBM bandwidth, and a small startup
// constant covers instruction prefetch into the on-chip buffers
// (§IV-A). Register-file pressure is modeled explicitly: tasks whose
// working set exceeds the register file spill intermediates to HBM,
// inflating traffic (the drastic degradation of paper Fig. 7).
package sim

import (
	"fmt"

	"nocap/internal/isa"
	"nocap/internal/tasks"
)

// Config describes a NoCap hardware configuration (paper §IV/Table II).
type Config struct {
	// FreqGHz is the clock (1 GHz in the paper).
	FreqGHz float64
	// Lane counts per FU (paper §IV-B: heterogeneous widths).
	MulLanes, AddLanes, HashLanes, ShuffleLanes, NTTLanes int
	// RegFileBytes is the on-chip register file capacity (8 MB).
	RegFileBytes int64
	// MemBytesPerCycle is HBM bandwidth per cycle (1 TB/s at 1 GHz =
	// 1024 B/cycle, "i.e., 128 elements/cycle" §IV-B).
	MemBytesPerCycle float64
	// TaskStartupCycles covers per-task instruction prefetch/drain.
	TaskStartupCycles int64
	// SpillPenalty scales the extra HBM traffic per byte of working set
	// beyond the register file (Fig. 7's drastic degradation).
	SpillPenalty float64
}

// DefaultConfig returns the paper's NoCap configuration.
func DefaultConfig() Config {
	return Config{
		FreqGHz:           1.0,
		MulLanes:          2048,
		AddLanes:          2048,
		HashLanes:         128,
		ShuffleLanes:      128,
		NTTLanes:          64,
		RegFileBytes:      8 << 20,
		MemBytesPerCycle:  1024,
		TaskStartupCycles: 2000,
		SpillPenalty:      1.5,
	}
}

// lanes returns the lane count for a functional unit.
func (c Config) lanes(fu isa.FU) int {
	switch fu {
	case isa.FUMul:
		return c.MulLanes
	case isa.FUAdd:
		return c.AddLanes
	case isa.FUHash:
		return c.HashLanes
	case isa.FUShuffle:
		return c.ShuffleLanes
	case isa.FUNTT:
		return c.NTTLanes
	}
	return 1
}

// TaskTiming is the simulator's accounting for one task.
type TaskTiming struct {
	Name       string
	Kind       tasks.Kind
	Cycles     int64
	Bottleneck string
	// FUCycles is per-unit occupancy (busy cycles).
	FUCycles [isa.NumFU]int64
	// MemBytes is HBM traffic including spill inflation.
	MemBytes int64
	// Spilled reports whether the working set exceeded the register file.
	Spilled bool
}

// Result is a full prover-run simulation.
type Result struct {
	Config Config
	Tasks  []TaskTiming
	// Cycles is total execution time in cycles.
	Cycles int64
	// MemBytes is total HBM traffic.
	MemBytes int64
	// FUBusy sums per-unit busy cycles across tasks.
	FUBusy [isa.NumFU]int64
}

// Seconds converts total cycles to wall-clock time.
func (r Result) Seconds() float64 {
	return float64(r.Cycles) / (r.Config.FreqGHz * 1e9)
}

// Utilization returns busy fraction for one unit over the whole run.
func (r Result) Utilization(fu isa.FU) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FUBusy[fu]) / float64(r.Cycles)
}

// TaskShare returns the runtime fraction of one task kind (Fig. 6a).
func (r Result) TaskShare(kind tasks.Kind) float64 {
	if r.Cycles == 0 {
		return 0
	}
	var c int64
	for _, t := range r.Tasks {
		if t.Kind == kind {
			c += t.Cycles
		}
	}
	return float64(c) / float64(r.Cycles)
}

// TrafficShare returns the HBM-traffic fraction of one task kind (Fig. 6b).
func (r Result) TrafficShare(kind tasks.Kind) float64 {
	if r.MemBytes == 0 {
		return 0
	}
	var b int64
	for _, t := range r.Tasks {
		if t.Kind == kind {
			b += t.MemBytes
		}
	}
	return float64(b) / float64(r.MemBytes)
}

// Run simulates the serial execution of a task list on a configuration.
func Run(cfg Config, taskList []tasks.Task) Result {
	res := Result{Config: cfg, Tasks: make([]TaskTiming, 0, len(taskList))}
	for _, t := range taskList {
		tt := runTask(cfg, t)
		res.Cycles += tt.Cycles
		res.MemBytes += tt.MemBytes
		for fu := isa.FU(0); fu < isa.NumFU; fu++ {
			res.FUBusy[fu] += tt.FUCycles[fu]
		}
		res.Tasks = append(res.Tasks, tt)
	}
	return res
}

// runTask times one task: bottleneck-resource occupancy under the static
// schedule, with register-file spill inflation.
func runTask(cfg Config, t tasks.Task) TaskTiming {
	p := t.Program
	tt := TaskTiming{Name: p.Name, Kind: t.Kind}

	memBytes := p.MemBytes()
	if ws := p.WorkingSetBytes; ws > cfg.RegFileBytes && cfg.RegFileBytes > 0 {
		// Working set exceeds on-chip storage: intermediates spill.
		over := float64(ws)/float64(cfg.RegFileBytes) - 1
		memBytes = int64(float64(memBytes) * (1 + cfg.SpillPenalty*over))
		tt.Spilled = true
	}
	tt.MemBytes = memBytes

	memCycles := int64(float64(memBytes) / cfg.MemBytesPerCycle)
	best, bottleneck := memCycles, "mem"
	for fu := isa.FU(0); fu < isa.FUMem; fu++ {
		elems := p.Elems(fu)
		if elems == 0 {
			continue
		}
		cycles := (elems + int64(cfg.lanes(fu)) - 1) / int64(cfg.lanes(fu))
		cycles += p.DelayCycles(fu)
		tt.FUCycles[fu] = cycles
		if cycles > best {
			best, bottleneck = cycles, fu.String()
		}
	}
	tt.Cycles = best + cfg.TaskStartupCycles
	tt.Bottleneck = bottleneck
	return tt
}

// Prover simulates a full Spartan+Orion proof for a 2^logN-constraint
// statement with the paper's protocol options.
func Prover(cfg Config, logN int, opts tasks.Options) Result {
	return Run(cfg, tasks.Inventory(logN, opts))
}

// String summarizes a result for logs.
func (r Result) String() string {
	return fmt.Sprintf("%.3f ms, %d tasks, %.1f GB traffic",
		r.Seconds()*1e3, len(r.Tasks), float64(r.MemBytes)/1e9)
}
