package sim

import (
	"math"
	"testing"

	"nocap/internal/isa"
	"nocap/internal/tasks"
)

// paperTableIV holds the published NoCap proving times (Table IV) with
// the padded log2 sizes the CPU baseline's power-of-two scaling implies.
var paperTableIV = []struct {
	name    string
	logN    int
	seconds float64
}{
	{"AES", 24, 0.1513},
	{"SHA", 25, 0.3110},
	{"RSA", 27, 1.3},
	{"Litmus", 28, 2.6},
	{"Auction", 30, 10.8},
}

// TestTableIVCalibration is the model's anchor test: simulated proving
// times must stay within 3% of the paper's Table IV.
func TestTableIVCalibration(t *testing.T) {
	cfg := DefaultConfig()
	for _, row := range paperTableIV {
		res := Prover(cfg, row.logN, tasks.DefaultOptions())
		rel := math.Abs(res.Seconds()-row.seconds) / row.seconds
		t.Logf("%-8s 2^%d: %8.1f ms (paper %8.1f ms, %+.1f%%)",
			row.name, row.logN, res.Seconds()*1e3, row.seconds*1e3, 100*(res.Seconds()/row.seconds-1))
		if rel > 0.03 {
			t.Errorf("%s: %.4fs vs paper %.4fs (%.1f%% off)", row.name, res.Seconds(), row.seconds, rel*100)
		}
	}
}

func TestSumcheckDominatesRuntime(t *testing.T) {
	// Fig. 6a: ~70% of NoCap runtime in sumcheck; SpMV tiny but present.
	res := Prover(DefaultConfig(), 24, tasks.DefaultOptions())
	sc := res.TaskShare(tasks.Sumcheck)
	if sc < 0.6 || sc > 0.8 {
		t.Fatalf("sumcheck runtime share %.2f outside [0.6, 0.8]", sc)
	}
	if s := res.TaskShare(tasks.SpMV); s <= 0 || s > 0.02 {
		t.Fatalf("spmv share %.4f implausible", s)
	}
	if s := res.TaskShare(tasks.RSEncode); s < 0.05 || s > 0.15 {
		t.Fatalf("rs share %.3f outside Fig. 6a range", s)
	}
}

func TestTrafficDominatedBySumcheck(t *testing.T) {
	// Fig. 6b: sumcheck traffic dominant, poly-arith second.
	res := Prover(DefaultConfig(), 24, tasks.DefaultOptions())
	sc := res.TrafficShare(tasks.Sumcheck)
	pa := res.TrafficShare(tasks.PolyArith)
	if sc < 0.5 {
		t.Fatalf("sumcheck traffic share %.2f < 0.5", sc)
	}
	if pa <= res.TrafficShare(tasks.Merkle) {
		t.Fatal("poly-arith traffic not second-largest")
	}
}

func TestRecomputationAblation(t *testing.T) {
	// §VIII-C: recomputation reduces sumcheck traffic ~31% and improves
	// NoCap's end-to-end performance.
	cfg := DefaultConfig()
	on := Prover(cfg, 24, tasks.Options{Recompute: true, Reps: 3})
	off := Prover(cfg, 24, tasks.Options{Recompute: false, Reps: 3})
	if on.Cycles >= off.Cycles {
		t.Fatalf("recomputation did not help: %d vs %d cycles", on.Cycles, off.Cycles)
	}
	speedup := float64(off.Cycles) / float64(on.Cycles)
	if speedup < 1.05 || speedup > 1.35 {
		t.Fatalf("recompute speedup %.2f outside [1.05, 1.35] (paper: 1.1×)", speedup)
	}
	var scOn, scOff int64
	for _, tt := range on.Tasks {
		if tt.Kind == tasks.Sumcheck {
			scOn = tt.MemBytes
		}
	}
	for _, tt := range off.Tasks {
		if tt.Kind == tasks.Sumcheck {
			scOff = tt.MemBytes
		}
	}
	saved := 1 - float64(scOn)/float64(scOff)
	if math.Abs(saved-0.31) > 0.03 {
		t.Fatalf("sumcheck traffic reduction %.2f, paper says 0.31", saved)
	}
}

func TestArithmeticMostSensitive(t *testing.T) {
	// Fig. 7: performance is most sensitive to raw arithmetic throughput.
	base := Prover(DefaultConfig(), 24, tasks.DefaultOptions()).Cycles

	halfMul := DefaultConfig()
	halfMul.MulLanes /= 2
	halfMul.AddLanes /= 2
	mulSlow := float64(Prover(halfMul, 24, tasks.DefaultOptions()).Cycles) / float64(base)

	halfMem := DefaultConfig()
	halfMem.MemBytesPerCycle /= 2
	memSlow := float64(Prover(halfMem, 24, tasks.DefaultOptions()).Cycles) / float64(base)

	halfHash := DefaultConfig()
	halfHash.HashLanes /= 2
	hashSlow := float64(Prover(halfHash, 24, tasks.DefaultOptions()).Cycles) / float64(base)

	if mulSlow <= memSlow || mulSlow <= hashSlow {
		t.Fatalf("arithmetic not most sensitive: mul %.2f mem %.2f hash %.2f",
			mulSlow, memSlow, hashSlow)
	}
	if mulSlow < 1.2 {
		t.Fatalf("halving arithmetic barely hurt (%.2f); model broken", mulSlow)
	}
}

func TestScalingUpBringsSmallBenefit(t *testing.T) {
	// Fig. 7: "scaling any one building block brings small benefits".
	base := Prover(DefaultConfig(), 24, tasks.DefaultOptions()).Cycles
	for name, mut := range map[string]func(*Config){
		"mul":  func(c *Config) { c.MulLanes *= 2; c.AddLanes *= 2 },
		"mem":  func(c *Config) { c.MemBytesPerCycle *= 2 },
		"hash": func(c *Config) { c.HashLanes *= 2 },
		"ntt":  func(c *Config) { c.NTTLanes *= 2 },
		"rf":   func(c *Config) { c.RegFileBytes *= 2 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		got := Prover(cfg, 24, tasks.DefaultOptions()).Cycles
		gain := float64(base) / float64(got)
		if gain > 1.35 {
			t.Fatalf("doubling %s gave %.2fx — should be a small benefit", name, gain)
		}
		if gain < 0.999 {
			t.Fatalf("doubling %s hurt performance", name)
		}
	}
}

func TestRegisterFileSpill(t *testing.T) {
	// Fig. 7: decreasing register file size leads sumcheck intermediates
	// to spill, drastically degrading performance; increasing it is
	// negligible.
	base := Prover(DefaultConfig(), 24, tasks.DefaultOptions()).Cycles

	small := DefaultConfig()
	small.RegFileBytes = 2 << 20
	spilled := Prover(small, 24, tasks.DefaultOptions())
	if float64(spilled.Cycles)/float64(base) < 1.3 {
		t.Fatalf("2MB register file only %.2fx slower; spill model broken",
			float64(spilled.Cycles)/float64(base))
	}
	anySpill := false
	for _, tt := range spilled.Tasks {
		if tt.Spilled {
			anySpill = true
		}
	}
	if !anySpill {
		t.Fatal("no task reported spilling")
	}

	big := DefaultConfig()
	big.RegFileBytes = 32 << 20
	if got := Prover(big, 24, tasks.DefaultOptions()).Cycles; got != base {
		t.Fatalf("larger register file changed cycles: %d vs %d", got, base)
	}
}

func TestUtilizationPlausible(t *testing.T) {
	// §VIII-B: overall compute utilization ~60%; the multiplier is the
	// busiest unit.
	res := Prover(DefaultConfig(), 24, tasks.DefaultOptions())
	mul := res.Utilization(isa.FUMul)
	if mul < 0.5 || mul > 0.85 {
		t.Fatalf("mul utilization %.2f outside [0.5, 0.85]", mul)
	}
	if res.Utilization(isa.FUNTT) > mul {
		t.Fatal("NTT busier than multiplier")
	}
}

func TestMemoryBandwidthUtilization(t *testing.T) {
	// The prover must be a heavy HBM user but not exceed the bandwidth.
	res := Prover(DefaultConfig(), 24, tasks.DefaultOptions())
	bw := float64(res.MemBytes) / res.Seconds() / 1e9 // GB/s
	if bw > 1100 {
		t.Fatalf("model exceeds HBM bandwidth: %.0f GB/s", bw)
	}
	if bw < 300 {
		t.Fatalf("implausibly low bandwidth use: %.0f GB/s", bw)
	}
}

func TestRepsScaling(t *testing.T) {
	// Dropping from 3 repetitions to 1 must cut the repetition-scaled
	// work roughly 3×, but not affect SpMV (performed once).
	three := Prover(DefaultConfig(), 24, tasks.Options{Recompute: true, Reps: 3})
	one := Prover(DefaultConfig(), 24, tasks.Options{Recompute: true, Reps: 1})
	ratio := float64(three.Cycles) / float64(one.Cycles)
	if ratio < 2.5 || ratio > 3.2 {
		t.Fatalf("3-rep/1-rep ratio %.2f", ratio)
	}
}

func TestResultString(t *testing.T) {
	res := Prover(DefaultConfig(), 20, tasks.DefaultOptions())
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunEmptyTaskList(t *testing.T) {
	res := Run(DefaultConfig(), nil)
	if res.Cycles != 0 || len(res.Tasks) != 0 {
		t.Fatal("empty run not empty")
	}
}

func BenchmarkSimulate2to30(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		Prover(cfg, 30, tasks.DefaultOptions())
	}
}
