package advtest

import (
	"bytes"
	"testing"
)

func TestMutatorIsDeterministic(t *testing.T) {
	valid := make([]byte, 256)
	for i := range valid {
		valid[i] = byte(i)
	}
	a, b := NewMutator(valid, 42), NewMutator(valid, 42)
	for i := 0; i < 200; i++ {
		ma, mb := a.Next(), b.Next()
		if ma.Kind != mb.Kind || !bytes.Equal(ma.Data, mb.Data) {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestMutationsDoNotCompound(t *testing.T) {
	valid := make([]byte, 128)
	m := NewMutator(valid, 7)
	for i := 0; i < 100; i++ {
		m.Next()
	}
	if !bytes.Equal(m.valid, make([]byte, 128)) {
		t.Fatal("mutator corrupted its reference copy")
	}
}

func TestEveryKindProducesOutput(t *testing.T) {
	valid := make([]byte, 64)
	for i := range valid {
		valid[i] = byte(i * 7)
	}
	m := NewMutator(valid, 3)
	for k := Kind(0); k < numKinds; k++ {
		out := m.Apply(k)
		if k != KindTruncate && len(out) == 0 {
			t.Fatalf("kind %v produced empty output", k)
		}
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
