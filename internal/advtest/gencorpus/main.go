// Command gencorpus (re)generates the seed fuzz corpora under each
// decoder package's testdata/fuzz directory: one valid encoding per
// target plus a handful of adversarial mutations from the shared
// mutation engine, so `go test -fuzz` starts from structurally
// interesting inputs instead of empty bytes. Run from the repo root:
//
//	go run ./internal/advtest/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"nocap/internal/advtest"
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/merkle"
	"nocap/internal/pcs"
	"nocap/internal/r1cs"
	"nocap/internal/spartan"
	"nocap/internal/transcript"
	"nocap/internal/wire"
)

// writeSeed writes one go-fuzz v1 corpus entry; each argument becomes a
// []byte(...) line.
func writeSeed(dir, name string, args ...[]byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	body := "go test fuzz v1\n"
	for _, a := range args {
		body += "[]byte(" + strconv.Quote(string(a)) + ")\n"
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
}

// seeds returns the valid encoding plus deterministic mutations of it.
func seeds(valid []byte) [][]byte {
	out := [][]byte{valid}
	mut := advtest.NewMutator(valid, 2024)
	for k := advtest.KindBitFlip; k <= advtest.KindSplice; k++ {
		out = append(out, mut.Apply(k))
	}
	return out
}

func randVec(n int, seed uint64) []field.Element {
	v := make([]field.Element, n)
	x := seed
	for i := range v {
		x = x*6364136223846793005 + 1442695040888963407
		v[i] = field.New(x)
	}
	return v
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "gencorpus:", err)
			os.Exit(1)
		}
	}

	// spartan: a real proof over a squaring-chain toy circuit.
	bd := r1cs.NewBuilder()
	prev, cur := bd.Secret(field.New(1)), bd.Secret(field.New(2))
	for i := 0; i < 10; i++ {
		sq := bd.Square(r1cs.FromVar(cur))
		next := bd.Secret(bd.Eval(r1cs.AddLC(r1cs.FromVar(sq), r1cs.FromVar(prev))))
		bd.AssertEq(r1cs.AddLC(r1cs.FromVar(sq), r1cs.FromVar(prev)), r1cs.FromVar(next))
		prev, cur = cur, next
	}
	out := bd.Public(bd.Value(cur))
	bd.AssertEq(r1cs.FromVar(cur), r1cs.FromVar(out))
	inst, io, w := bd.Build()
	proof, err := spartan.Prove(spartan.TestParams(), inst, io, w)
	die(err)
	proofBytes, err := proof.MarshalBinary()
	die(err)
	dir := filepath.Join(root, "internal/spartan/testdata/fuzz/FuzzUnmarshalProof")
	for i, s := range seeds(proofBytes) {
		die(writeSeed(dir, fmt.Sprintf("seed-%02d", i), s))
	}

	// pcs: commitment + opening proof.
	params := pcs.DefaultParams()
	params.Rows = 8
	st, err := pcs.Commit(params, randVec(1<<8, 9))
	die(err)
	point := randVec(8, 10)
	opening, _, err := st.Open(transcript.New("corpus"), [][]field.Element{point})
	die(err)
	ww := &wire.Writer{}
	opening.AppendTo(ww)
	dir = filepath.Join(root, "internal/pcs/testdata/fuzz/FuzzReadOpeningProof")
	for i, s := range seeds(ww.Bytes()) {
		die(writeSeed(dir, fmt.Sprintf("seed-%02d", i), s))
	}
	ww = &wire.Writer{}
	st.Commitment().AppendTo(ww)
	dir = filepath.Join(root, "internal/pcs/testdata/fuzz/FuzzReadCommitment")
	for i, s := range seeds(ww.Bytes()) {
		die(writeSeed(dir, fmt.Sprintf("seed-%02d", i), s))
	}

	// merkle: an authentication path.
	leaves := make([]hashfn.Digest, 32)
	for i := range leaves {
		leaves[i] = merkle.LeafOfColumn(randVec(4, uint64(i)))
	}
	tree := merkle.New(leaves)
	ww = &wire.Writer{}
	tree.Open(13).AppendTo(ww)
	dir = filepath.Join(root, "internal/merkle/testdata/fuzz/FuzzReadPath")
	for i, s := range seeds(ww.Bytes()) {
		die(writeSeed(dir, fmt.Sprintf("seed-%02d", i), s))
	}

	// wire: op-stream + data pairs.
	ww = &wire.Writer{}
	ww.Elems(randVec(16, 77))
	ww.U64(5)
	dir = filepath.Join(root, "internal/wire/testdata/fuzz/FuzzReader")
	die(writeSeed(dir, "seed-00", []byte{2, 0, 4}, ww.Bytes()))
	die(writeSeed(dir, "seed-01", []byte{0, 1, 2, 3, 4}, ww.Bytes()))
	mut := advtest.NewMutator(ww.Bytes(), 7)
	for i := 0; i < 4; i++ {
		m := mut.Next()
		die(writeSeed(dir, fmt.Sprintf("seed-%02d", i+2), []byte{byte(i), 2, 3}, m.Data))
	}

	fmt.Println("fuzz corpora regenerated")
}
