// Package advtest is the adversarial-input test harness for the proof
// wire format: a deterministic proof-mutation engine that turns one valid
// serialized proof into a stream of hostile variants. The verifier
// boundary contract — reject with a typed zkerr error, never panic,
// never allocate beyond DecodeLimits — is asserted against these streams
// by the decoder test suites and seeded into the fuzz corpora.
//
// Mutation kinds cover the classes of corruption a hostile or faulty
// prover-side link can produce (paper §V ships proofs over a constrained
// channel): single-bit flips, truncations and extensions, length-prefix
// inflation, non-canonical field elements (≥ p), word swaps that model
// transcript-label/message reordering, zero-fill windows, and random
// splices.
package advtest

import (
	"encoding/binary"
	"math/rand"
)

// Goldilocks modulus, duplicated here to keep the package dependency-free
// (it must be importable by every decoder's tests without cycles).
const modulus uint64 = 0xFFFFFFFF00000001

// Kind identifies a mutation class, for failure reporting.
type Kind int

const (
	// KindBitFlip flips one random bit.
	KindBitFlip Kind = iota
	// KindByteSet overwrites one byte with a random value.
	KindByteSet
	// KindTruncate cuts the message at a random offset.
	KindTruncate
	// KindExtend appends random bytes.
	KindExtend
	// KindInflateLen overwrites an aligned 8-byte word with a huge value,
	// modeling a hostile length prefix demanding gigabytes.
	KindInflateLen
	// KindNonCanonical overwrites an aligned word with a value ≥ p,
	// modeling a non-canonical field element encoding.
	KindNonCanonical
	// KindSwapWords swaps two aligned 8-byte words (reordered messages /
	// transcript-label confusion).
	KindSwapWords
	// KindZeroWindow zero-fills a random window.
	KindZeroWindow
	// KindSplice copies a random window over another offset.
	KindSplice
	// KindEngineTag rewrites the version/engine-id header words of the
	// proof wire format, modeling a proof relabeled under a different
	// hash engine (or an unknown one): the verifier must reject with a
	// typed error, never follow the hostile tag into a panic.
	KindEngineTag
	numKinds
)

// String names the mutation class.
func (k Kind) String() string {
	switch k {
	case KindBitFlip:
		return "bit-flip"
	case KindByteSet:
		return "byte-set"
	case KindTruncate:
		return "truncate"
	case KindExtend:
		return "extend"
	case KindInflateLen:
		return "inflate-length"
	case KindNonCanonical:
		return "non-canonical-element"
	case KindSwapWords:
		return "swap-words"
	case KindZeroWindow:
		return "zero-window"
	case KindSplice:
		return "splice"
	case KindEngineTag:
		return "engine-tag"
	}
	return "unknown"
}

// Mutation is one hostile variant of a valid message.
type Mutation struct {
	Kind Kind
	Data []byte
}

// Mutator produces a deterministic stream of mutations of one valid
// message. The same seed yields the same stream, so failures reproduce.
type Mutator struct {
	valid []byte
	rng   *rand.Rand
}

// NewMutator returns a mutator over a copy of valid.
func NewMutator(valid []byte, seed int64) *Mutator {
	return &Mutator{
		valid: append([]byte(nil), valid...),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Next returns the next mutation. Every call copies the valid message
// first, so mutations never compound.
func (m *Mutator) Next() Mutation {
	kind := Kind(m.rng.Intn(int(numKinds)))
	return Mutation{Kind: kind, Data: m.Apply(kind)}
}

// Apply produces one mutation of the given kind.
func (m *Mutator) Apply(kind Kind) []byte {
	buf := append([]byte(nil), m.valid...)
	n := len(buf)
	if n == 0 {
		return buf
	}
	switch kind {
	case KindBitFlip:
		i := m.rng.Intn(n)
		buf[i] ^= 1 << uint(m.rng.Intn(8))
	case KindByteSet:
		buf[m.rng.Intn(n)] = byte(m.rng.Intn(256))
	case KindTruncate:
		buf = buf[:m.rng.Intn(n)]
	case KindExtend:
		extra := make([]byte, 1+m.rng.Intn(64))
		m.rng.Read(extra)
		buf = append(buf, extra...)
	case KindInflateLen:
		if n >= 8 {
			off := 8 * m.rng.Intn(n/8)
			// Large values spanning "plausible but huge" through "absurd":
			// 2^20+δ up to nearly 2^63.
			v := uint64(1)<<uint(20+m.rng.Intn(43)) + uint64(m.rng.Intn(1<<16))
			binary.LittleEndian.PutUint64(buf[off:], v)
		}
	case KindNonCanonical:
		if n >= 8 {
			off := 8 * m.rng.Intn(n/8)
			v := modulus + uint64(m.rng.Int63n(int64(^uint64(0)-modulus)))
			binary.LittleEndian.PutUint64(buf[off:], v)
		}
	case KindSwapWords:
		if n >= 16 {
			a := 8 * m.rng.Intn(n/8)
			b := 8 * m.rng.Intn(n/8)
			for k := 0; k < 8; k++ {
				buf[a+k], buf[b+k] = buf[b+k], buf[a+k]
			}
		}
	case KindZeroWindow:
		lo := m.rng.Intn(n)
		hi := lo + 1 + m.rng.Intn(n-lo)
		for i := lo; i < hi; i++ {
			buf[i] = 0
		}
	case KindSplice:
		if n >= 2 {
			w := 1 + m.rng.Intn(n/2)
			src := m.rng.Intn(n - w + 1)
			dst := m.rng.Intn(n - w + 1)
			copy(buf[dst:dst+w], m.valid[src:src+w])
		}
	case KindEngineTag:
		// Word 0 is the magic, word 1 the version, word 2 (in versioned
		// engine streams) the engine id. Rewrite the version to the
		// engine-tagged value and the following word to a small id —
		// sometimes registered-but-wrong, sometimes unknown.
		if n >= 24 {
			binary.LittleEndian.PutUint64(buf[8:], 1+uint64(m.rng.Intn(2)))
			binary.LittleEndian.PutUint64(buf[16:], uint64(m.rng.Intn(4)))
		}
	}
	return buf
}
