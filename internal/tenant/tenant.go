// Package tenant is the multi-tenant admission layer of the proving
// service: identity (static API keys), per-tenant quotas (token-bucket
// rate limits, async-job budgets), and a weighted deficit-round-robin
// scheduler (scheduler.go) that apportions the shared worker pool
// fairly across tenants. The paper's thesis — many proofs scheduled
// through shared proving capacity — presumes a front end that keeps one
// saturating client from starving the rest; this package is that front
// end in software (DESIGN.md §12).
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultID names the tenant every unauthenticated request maps to.
// Refusing anonymous traffic outright is not supported; deployments
// that want it set the default tenant's RatePerSec very low or front
// the service with their own gateway.
const DefaultID = "default"

// Config describes one tenant. Zero fields inherit from the registry's
// defaults (and ultimately from built-in fallbacks), so a keyfile only
// needs to state what differs.
type Config struct {
	// ID names the tenant in responses, metrics labels, and the job
	// journal. Required for keyed tenants.
	ID string `json:"id"`
	// Key is the static API key (X-API-Key or Authorization: Bearer).
	// Required for keyed tenants; the default tenant has none.
	Key string `json:"key,omitempty"`
	// Weight is the DRR quantum: relative share of worker capacity under
	// contention. Must be >= 1 after defaulting.
	Weight int `json:"weight,omitempty"`
	// QueueDepth bounds this tenant's admission queue; overflow is a
	// per-tenant 429 that cannot be caused by other tenants' backlog.
	QueueDepth int `json:"queue_depth,omitempty"`
	// MaxInflight caps how many of this tenant's requests may occupy
	// workers at once; 0 means no cap beyond the pool size.
	MaxInflight int `json:"max_inflight,omitempty"`
	// RatePerSec is the token-bucket refill rate; <= 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity; defaults to ceil(RatePerSec)+1.
	Burst int `json:"burst,omitempty"`
	// MaxJobs caps this tenant's live (non-terminal) async jobs;
	// 0 means unlimited.
	MaxJobs int `json:"max_jobs,omitempty"`
}

// withDefaults fills zero fields of c from d, then from built-ins.
func (c Config) withDefaults(d Config) Config {
	if c.Weight <= 0 {
		c.Weight = d.Weight
	}
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = d.MaxInflight
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = d.RatePerSec
	}
	if c.Burst <= 0 {
		c.Burst = d.Burst
	}
	if c.Burst <= 0 && c.RatePerSec > 0 {
		c.Burst = int(c.RatePerSec) + 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = d.MaxJobs
	}
	return c
}

// Tenant is one admitted identity: its resolved config, its token
// bucket, and its rejection counters (the scheduler keeps the queue
// counters; see Scheduler.Stats).
type Tenant struct {
	Config

	bucket          bucket
	rateRejects     atomic.Int64
	jobQuotaRejects atomic.Int64
}

func newTenant(c Config) *Tenant {
	t := &Tenant{Config: c}
	t.bucket.init(c.RatePerSec, c.Burst)
	return t
}

// Allow consumes one rate token. When it refuses, retryIn is how long
// until a token will be available — the Retry-After hint.
func (t *Tenant) Allow() (ok bool, retryIn time.Duration) {
	return t.bucket.allow(time.Now())
}

// RecordRateReject counts a 429 caused by this tenant's rate limit.
func (t *Tenant) RecordRateReject() { t.rateRejects.Add(1) }

// RateRejects reports how many requests this tenant's rate limit shed.
func (t *Tenant) RateRejects() int64 { return t.rateRejects.Load() }

// RecordJobQuotaReject counts a 429 caused by this tenant's MaxJobs cap.
func (t *Tenant) RecordJobQuotaReject() { t.jobQuotaRejects.Add(1) }

// JobQuotaRejects reports how many job submissions the MaxJobs cap shed.
func (t *Tenant) JobQuotaRejects() int64 { return t.jobQuotaRejects.Load() }

// bucket is a standard token bucket. rate <= 0 disables limiting.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func (b *bucket) init(rate float64, burst int) {
	b.rate = rate
	b.burst = float64(burst)
	if b.burst < 1 {
		b.burst = 1
	}
	b.tokens = b.burst
}

func (b *bucket) allow(now time.Time) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate // seconds until one whole token
	return false, time.Duration(need * float64(time.Second))
}

// Registry resolves API keys to tenants. It is immutable after
// construction; all lookups are lock-free.
type Registry struct {
	def   *Tenant
	byKey map[string]*Tenant
	byID  map[string]*Tenant
	all   []*Tenant // default first, then keyed tenants sorted by ID
}

// NewRegistry builds a registry from the default tenant's config (which
// also supplies fallback values for keyed tenants' zero fields) and the
// keyed tenant list. Keyed tenants must have distinct non-empty IDs and
// keys; the reserved default ID cannot be reused.
func NewRegistry(defaults Config, tenants []Config) (*Registry, error) {
	if defaults.ID == "" {
		defaults.ID = DefaultID
	}
	defaults = defaults.withDefaults(Config{})
	r := &Registry{
		def:   newTenant(defaults),
		byKey: make(map[string]*Tenant, len(tenants)),
		byID:  make(map[string]*Tenant, len(tenants)+1),
	}
	r.byID[defaults.ID] = r.def
	sorted := append([]Config(nil), tenants...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, tc := range sorted {
		if tc.ID == "" {
			return nil, fmt.Errorf("tenant: config with key %q has no id", tc.Key)
		}
		if tc.Key == "" {
			return nil, fmt.Errorf("tenant: %s has no API key", tc.ID)
		}
		if _, dup := r.byID[tc.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate id %s", tc.ID)
		}
		if _, dup := r.byKey[tc.Key]; dup {
			return nil, fmt.Errorf("tenant: duplicate API key (id %s)", tc.ID)
		}
		t := newTenant(tc.withDefaults(defaults))
		r.byID[tc.ID] = t
		r.byKey[tc.Key] = t
	}
	r.all = append(r.all, r.def)
	for _, tc := range sorted {
		r.all = append(r.all, r.byID[tc.ID])
	}
	return r, nil
}

// Default returns the anonymous tenant.
func (r *Registry) Default() *Tenant { return r.def }

// ByKey resolves an API key.
func (r *Registry) ByKey(key string) (*Tenant, bool) {
	t, ok := r.byKey[key]
	return t, ok
}

// ByID resolves a tenant ID (metrics, journal replay).
func (r *Registry) ByID(id string) (*Tenant, bool) {
	t, ok := r.byID[id]
	return t, ok
}

// All returns every tenant, default first, keyed tenants sorted by ID.
// Callers must not mutate the slice.
func (r *Registry) All() []*Tenant { return r.all }

// Keyed reports whether any API keys are configured. An unkeyed
// registry serves everyone as the default tenant and does not isolate
// job visibility.
func (r *Registry) Keyed() bool { return len(r.byKey) > 0 }

// keyfile is the on-disk format: {"tenants": [{...}, ...]}.
type keyfile struct {
	Tenants []Config `json:"tenants"`
}

// LoadKeyfile reads tenant configs from a JSON keyfile. Validation
// (duplicate IDs/keys) happens in NewRegistry so flag-built and
// file-built configs share one path.
func LoadKeyfile(path string) ([]Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: read keyfile: %w", err)
	}
	var kf keyfile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, fmt.Errorf("tenant: parse keyfile %s: %w", path, err)
	}
	return kf.Tenants, nil
}
