package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegistryDefaultsAndLookup(t *testing.T) {
	reg, err := NewRegistry(Config{Weight: 2, QueueDepth: 4}, []Config{
		{ID: "acme", Key: "k-acme", Weight: 8, RatePerSec: 10},
		{ID: "beta", Key: "k-beta"},
	})
	if err != nil {
		t.Fatal(err)
	}
	def := reg.Default()
	if def.ID != DefaultID || def.Weight != 2 || def.QueueDepth != 4 {
		t.Fatalf("default tenant: %+v", def.Config)
	}
	acme, ok := reg.ByKey("k-acme")
	if !ok || acme.ID != "acme" {
		t.Fatalf("ByKey(k-acme): %+v ok=%v", acme, ok)
	}
	if acme.Weight != 8 {
		t.Fatalf("acme weight %d, want explicit 8", acme.Weight)
	}
	if acme.Burst != 11 {
		t.Fatalf("acme burst %d, want rate+1 = 11", acme.Burst)
	}
	// beta stated nothing beyond identity: it inherits the defaults.
	beta, _ := reg.ByID("beta")
	if beta.Weight != 2 || beta.QueueDepth != 4 {
		t.Fatalf("beta inherited %+v, want weight 2 depth 4", beta.Config)
	}
	if _, ok := reg.ByKey("nope"); ok {
		t.Fatal("unknown key resolved")
	}
	if !reg.Keyed() {
		t.Fatal("registry with keyed tenants reports Keyed()=false")
	}
	all := reg.All()
	if len(all) != 3 || all[0].ID != DefaultID || all[1].ID != "acme" || all[2].ID != "beta" {
		ids := make([]string, len(all))
		for i, tn := range all {
			ids[i] = tn.ID
		}
		t.Fatalf("All() order %v, want [default acme beta]", ids)
	}

	unkeyed, err := NewRegistry(Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unkeyed.Keyed() {
		t.Fatal("empty registry reports Keyed()=true")
	}
}

func TestRegistryRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name    string
		tenants []Config
		wantErr string
	}{
		{"missing id", []Config{{Key: "k"}}, "no id"},
		{"missing key", []Config{{ID: "a"}}, "no API key"},
		{"duplicate id", []Config{{ID: "a", Key: "k1"}, {ID: "a", Key: "k2"}}, "duplicate id"},
		{"duplicate key", []Config{{ID: "a", Key: "k"}, {ID: "b", Key: "k"}}, "duplicate API key"},
		{"reserved default id", []Config{{ID: DefaultID, Key: "k"}}, "duplicate id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRegistry(Config{}, tc.tenants)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestBucketRateLimit(t *testing.T) {
	var b bucket
	b.init(2, 2) // 2/sec, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retryIn := b.allow(now)
	if ok {
		t.Fatal("third immediate request allowed past burst")
	}
	if retryIn <= 0 || retryIn > time.Second {
		t.Fatalf("retryIn %v, want (0, 500ms]-ish at 2/sec", retryIn)
	}
	// Half a second refills one token at 2/sec.
	if ok, _ := b.allow(now.Add(500 * time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
	// Idle time must not accumulate past the burst.
	later := now.Add(time.Hour)
	allowed := 0
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(later); ok {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("after an idle hour %d tokens, want burst cap 2", allowed)
	}
}

func TestBucketUnlimited(t *testing.T) {
	tn := newTenant(Config{ID: "x"}) // RatePerSec 0 = unlimited
	for i := 0; i < 1000; i++ {
		if ok, _ := tn.Allow(); !ok {
			t.Fatal("unlimited tenant refused")
		}
	}
}

func TestLoadKeyfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `{"tenants":[
		{"id":"acme","key":"secret-a","weight":4,"rate_per_sec":5,"max_jobs":3},
		{"id":"beta","key":"secret-b"}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	tenants, err := LoadKeyfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 || tenants[0].ID != "acme" || tenants[0].Weight != 4 ||
		tenants[0].RatePerSec != 5 || tenants[0].MaxJobs != 3 || tenants[1].Key != "secret-b" {
		t.Fatalf("parsed %+v", tenants)
	}
	if _, err := LoadKeyfile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing keyfile loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o600)
	if _, err := LoadKeyfile(bad); err == nil {
		t.Fatal("malformed keyfile loaded")
	}
}
