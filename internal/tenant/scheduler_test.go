package tenant

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func twoQueues(wHeavy, wLight, depth int) *Scheduler {
	return NewScheduler([]QueueConfig{
		{ID: "heavy", Weight: wHeavy, Depth: depth},
		{ID: "light", Weight: wLight, Depth: depth},
	})
}

// fill enqueues n unit-cost items for tenantID, failing the test on any
// error.
func fill(t *testing.T, s *Scheduler, tenantID string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Enqueue(tenantID, i, 1); err != nil {
			t.Fatalf("Enqueue %s #%d: %v", tenantID, i, err)
		}
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	s := twoQueues(3, 1, 64)
	fill(t, s, "heavy", 40)
	fill(t, s, "light", 40)
	counts := map[string]int{}
	// Dequeue one full rotation's worth many times over; both queues stay
	// non-empty throughout, so the service ratio must match the weights.
	for i := 0; i < 32; i++ {
		_, id, _, ok := s.Dequeue()
		if !ok {
			t.Fatal("Dequeue returned ok=false with work queued")
		}
		s.Done(id)
		counts[id]++
	}
	if counts["heavy"] != 24 || counts["light"] != 8 {
		t.Fatalf("service counts %v, want 3:1 split (24/8) over 32 dequeues", counts)
	}
}

// TestSchedulerFairnessBound pins the starvation-freedom invariant from
// DESIGN.md §12: with unit costs, a newly queued request of tenant i
// waits at most K = Σ_{j≠i} w_j + max_j w_j dequeues, however deep the
// other queues are.
func TestSchedulerFairnessBound(t *testing.T) {
	s := NewScheduler([]QueueConfig{
		{ID: "a", Weight: 5, Depth: 256},
		{ID: "b", Weight: 3, Depth: 256},
		{ID: "light", Weight: 1, Depth: 4},
	})
	// Saturate the heavy tenants, then queue one light item.
	fill(t, s, "a", 200)
	fill(t, s, "b", 200)
	fill(t, s, "light", 1)
	const bound = 5 + 3 + 5 // Σ_{j≠light} w_j + max_j w_j
	for i := 0; ; i++ {
		_, id, _, ok := s.Dequeue()
		if !ok {
			t.Fatal("Dequeue returned ok=false")
		}
		s.Done(id)
		if id == "light" {
			if i > bound {
				t.Fatalf("light tenant served after %d dequeues, bound is %d", i, bound)
			}
			return
		}
		if i > bound {
			t.Fatalf("light tenant still unserved after %d dequeues (bound %d)", i, bound)
		}
	}
}

func TestSchedulerDeficitResetOnEmpty(t *testing.T) {
	s := twoQueues(10, 1, 64)
	// heavy drains completely; its large deficit must not carry over to
	// its next burst (that would let it monopolize the next rotation).
	fill(t, s, "heavy", 2)
	for i := 0; i < 2; i++ {
		_, id, _, _ := s.Dequeue()
		s.Done(id)
		if id != "heavy" {
			t.Fatalf("dequeue %d from %s, want heavy", i, id)
		}
	}
	fill(t, s, "heavy", 20)
	fill(t, s, "light", 20)
	counts := map[string]int{}
	for i := 0; i < 11; i++ {
		_, id, _, _ := s.Dequeue()
		s.Done(id)
		counts[id]++
	}
	// One full rotation: heavy serves at most its quantum (10), light
	// gets its turn within the first 11 dequeues.
	if counts["light"] == 0 {
		t.Fatalf("light starved across a rotation: %v (stale deficit carried over)", counts)
	}
}

func TestSchedulerQueueFullIsPerTenant(t *testing.T) {
	s := twoQueues(1, 1, 2)
	fill(t, s, "heavy", 2)
	if err := s.Enqueue("heavy", 99, 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("heavy overflow: %v, want ErrQueueFull", err)
	}
	// The other tenant's queue is unaffected — the isolation property.
	if err := s.Enqueue("light", 0, 1); err != nil {
		t.Fatalf("light blocked by heavy's backlog: %v", err)
	}
	st := s.Stats()
	if st[0].ID != "heavy" || st[0].RejectedFull != 1 || st[1].RejectedFull != 0 {
		t.Fatalf("stats %+v, want exactly one heavy rejection", st)
	}
}

func TestSchedulerUnknownTenant(t *testing.T) {
	s := twoQueues(1, 1, 2)
	if err := s.Enqueue("nobody", 0, 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
}

func TestSchedulerMaxInflight(t *testing.T) {
	s := NewScheduler([]QueueConfig{
		{ID: "capped", Weight: 1, Depth: 8, MaxInflight: 1},
		{ID: "free", Weight: 1, Depth: 8},
	})
	fill(t, s, "capped", 3)
	fill(t, s, "free", 3)
	_, first, _, _ := s.Dequeue()
	var got []string
	got = append(got, first)
	// With capped at its inflight limit, the next dequeues must all come
	// from the other tenant (or, if first was "free", capped serves once
	// then stalls).
	cappedInflight := 0
	if first == "capped" {
		cappedInflight = 1
	}
	for i := 0; i < 3; i++ {
		_, id, _, ok := s.Dequeue()
		if !ok {
			t.Fatal("Dequeue ok=false")
		}
		got = append(got, id)
		if id == "capped" {
			cappedInflight++
		}
		if cappedInflight > 1 {
			t.Fatalf("capped tenant exceeded MaxInflight=1: order %v", got)
		}
	}
	// Releasing the slot makes capped eligible again.
	s.Done("capped")
	found := false
	for i := 0; i < 4; i++ {
		_, id, _, ok := s.Dequeue()
		if !ok {
			break
		}
		if id == "capped" {
			found = true
			break
		}
		s.Done(id)
	}
	if first != "capped" && !found {
		// first=="capped" means Done freed the only slot and remaining
		// capped items may already be drained; only assert when capped
		// items must still be there.
		t.Fatal("capped tenant never resumed after Done")
	}
}

func TestSchedulerBlockingDequeueAndStop(t *testing.T) {
	s := twoQueues(1, 1, 4)
	type res struct {
		v  any
		ok bool
	}
	got := make(chan res, 1)
	go func() {
		v, _, _, ok := s.Dequeue()
		got <- res{v, ok}
	}()
	select {
	case r := <-got:
		t.Fatalf("Dequeue returned %+v with nothing queued", r)
	case <-time.After(20 * time.Millisecond):
	}
	if err := s.Enqueue("light", "hello", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if !r.ok || r.v != "hello" {
			t.Fatalf("Dequeue got %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dequeue never woke for the enqueued item")
	}

	// Stop wakes blocked dequeuers with ok=false and fails new enqueues.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, ok := s.Dequeue(); ok {
				t.Error("Dequeue after Stop returned ok=true")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	wg.Wait()
	if err := s.Enqueue("light", 0, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("Enqueue after Stop: %v", err)
	}
}

func TestSchedulerDrainExactlyOnce(t *testing.T) {
	s := twoQueues(1, 1, 8)
	fill(t, s, "heavy", 3)
	fill(t, s, "light", 2)
	s.Stop()
	first := s.Drain()
	if len(first) != 5 {
		t.Fatalf("Drain returned %d items, want 5", len(first))
	}
	if second := s.Drain(); len(second) != 0 {
		t.Fatalf("second Drain returned %d items, want 0", len(second))
	}
	if s.Len() != 0 {
		t.Fatalf("Len %d after drain", s.Len())
	}
}

func TestSchedulerCapacityAndStats(t *testing.T) {
	s := twoQueues(2, 1, 8)
	if s.Capacity() != 16 {
		t.Fatalf("Capacity %d, want 16", s.Capacity())
	}
	fill(t, s, "heavy", 2)
	_, id, wait, ok := s.Dequeue()
	if !ok || id != "heavy" || wait < 0 {
		t.Fatalf("Dequeue: id=%s wait=%v ok=%v", id, wait, ok)
	}
	st := s.Stats()
	if len(st) != 2 || st[0].ID != "heavy" || st[1].ID != "light" {
		t.Fatalf("stats order %+v", st)
	}
	h := st[0]
	if h.Enqueued != 2 || h.Dequeued != 1 || h.Depth != 1 || h.Inflight != 1 ||
		h.Weight != 2 || h.Capacity != 8 {
		t.Fatalf("heavy stats %+v", h)
	}
	s.Done("heavy")
	if s.Stats()[0].Inflight != 0 {
		t.Fatal("Done did not release the inflight slot")
	}
}
