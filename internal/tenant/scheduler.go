package tenant

import (
	"errors"
	"sync"
	"time"
)

// Scheduler errors. The server maps all of them to typed HTTP statuses;
// none escapes to clients as message text.
var (
	// ErrQueueFull: the tenant's own bounded queue is at capacity. Other
	// tenants' backlog can never cause it — that is the isolation
	// property the per-tenant queues exist for.
	ErrQueueFull = errors.New("tenant: queue full")
	// ErrUnknownTenant: Enqueue named a tenant the scheduler has no
	// queue for (registry and scheduler out of sync — a caller bug).
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	// ErrStopped: the scheduler has been stopped (server draining).
	ErrStopped = errors.New("tenant: scheduler stopped")
)

// QueueConfig sizes one tenant's scheduler queue.
type QueueConfig struct {
	ID          string
	Weight      int // DRR quantum, >= 1
	Depth       int // queue bound, >= 1
	MaxInflight int // concurrent worker cap, 0 = uncapped
}

// QueueStats is one tenant's scheduler counters, read atomically under
// the scheduler lock.
type QueueStats struct {
	ID           string
	Weight       int
	Depth        int // items currently queued
	Capacity     int // queue bound
	Inflight     int // items dequeued but not yet Done
	Enqueued     int64
	Dequeued     int64
	RejectedFull int64
	QueueWaitNs  int64 // sum of enqueue->dequeue latency
}

type entry struct {
	v    any
	cost int
	at   time.Time
}

// tq is one tenant's queue plus its DRR state. All fields are guarded
// by Scheduler.mu.
type tq struct {
	id          string
	weight      int
	depth       int
	maxInflight int

	q       []entry
	deficit int
	// charged records that the quantum was granted for the current visit
	// of the round pointer, so a tenant the pointer parks on (serving a
	// burst) is charged exactly once per visit, not once per Dequeue.
	charged  bool
	active   bool // in the ring
	inflight int

	enqueued     int64
	dequeued     int64
	rejectedFull int64
	waitNs       int64
}

// Scheduler is a weighted deficit-round-robin scheduler over per-tenant
// bounded FIFO queues. It replaces the server's single admission
// channel: producers Enqueue into their tenant's queue, workers block
// in Dequeue, and the DRR policy picks which tenant's head to serve.
//
// Fairness invariant (DESIGN.md §12): with unit costs, a request at the
// head of tenant i's queue is served after at most
//
//	K = Σ_{j≠i} w_j + max_j w_j
//
// other dequeues, regardless of how saturated the other queues are:
// every other tenant j serves at most w_j items per full rotation
// (deficits reset when a queue empties and do not accumulate while
// inactive), plus the tenant the pointer was parked on may finish a
// burst it had already been charged for. Starvation is impossible.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	byID    map[string]*tq
	ring    []*tq // active (non-empty) tenants in round order
	cur     int   // ring index the DRR pointer is parked on
	queued  int   // total items across all queues
	stopped bool
}

// NewScheduler builds a scheduler with one queue per config entry.
func NewScheduler(queues []QueueConfig) *Scheduler {
	s := &Scheduler{byID: make(map[string]*tq, len(queues))}
	s.cond = sync.NewCond(&s.mu)
	for _, qc := range queues {
		w, d := qc.Weight, qc.Depth
		if w < 1 {
			w = 1
		}
		if d < 1 {
			d = 1
		}
		s.byID[qc.ID] = &tq{id: qc.ID, weight: w, depth: d, maxInflight: qc.MaxInflight}
	}
	return s
}

// Enqueue appends v to tenantID's queue (cost < 1 is treated as 1).
func (s *Scheduler) Enqueue(tenantID string, v any, cost int) error {
	if cost < 1 {
		cost = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrStopped
	}
	t := s.byID[tenantID]
	if t == nil {
		return ErrUnknownTenant
	}
	if len(t.q) >= t.depth {
		t.rejectedFull++
		return ErrQueueFull
	}
	t.q = append(t.q, entry{v: v, cost: cost, at: time.Now()})
	t.enqueued++
	s.queued++
	if !t.active {
		t.active = true
		t.charged = false
		s.ring = append(s.ring, t)
	}
	s.cond.Broadcast()
	return nil
}

// Dequeue blocks until the DRR policy yields an item or the scheduler
// is stopped (ok=false). wait is the item's time in queue. The caller
// must call Done(tenantID) when the item finishes if MaxInflight caps
// are in use (calling it unconditionally is fine).
func (s *Scheduler) Dequeue() (v any, tenantID string, wait time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if e, t, found := s.pickLocked(); found {
			w := time.Since(e.at)
			t.waitNs += w.Nanoseconds()
			t.dequeued++
			t.inflight++
			return e.v, t.id, w, true
		}
		if s.stopped {
			return nil, "", 0, false
		}
		s.cond.Wait()
	}
}

// pickLocked runs the DRR rotation: grant the quantum once per visit,
// serve the head while the deficit covers its cost, skip tenants at
// their inflight cap without charging them, and drop emptied queues
// from the ring with their deficit cleared. Returns found=false only
// when no eligible work exists (all queues empty or all backlogged
// tenants are at their inflight caps).
func (s *Scheduler) pickLocked() (entry, *tq, bool) {
	for s.queued > 0 && len(s.ring) > 0 {
		eligible := false
		for i := 0; i < len(s.ring); i++ {
			t := s.ring[s.cur]
			if t.maxInflight > 0 && t.inflight >= t.maxInflight {
				s.advanceLocked()
				continue
			}
			eligible = true
			if !t.charged {
				t.deficit += t.weight
				t.charged = true
			}
			if t.deficit >= t.q[0].cost {
				e := t.q[0]
				t.q[0] = entry{}
				t.q = t.q[1:]
				t.deficit -= e.cost
				s.queued--
				if len(t.q) == 0 {
					t.deficit = 0
					t.charged = false
					t.active = false
					s.ring = append(s.ring[:s.cur], s.ring[s.cur+1:]...)
					if s.cur >= len(s.ring) {
						s.cur = 0
					}
					if cap(t.q) > 64 {
						t.q = nil
					}
				}
				return e, t, true
			}
			s.advanceLocked()
		}
		if !eligible {
			break
		}
		// A full rotation granted quanta without serving (every head
		// costs more than one quantum); loop — deficits accumulate until
		// some head is affordable, so this terminates.
	}
	return entry{}, nil, false
}

// advanceLocked moves the round pointer to the next active tenant,
// ending the current tenant's visit (its next visit re-grants the
// quantum).
func (s *Scheduler) advanceLocked() {
	if len(s.ring) == 0 {
		s.cur = 0
		return
	}
	s.ring[s.cur].charged = false
	s.cur = (s.cur + 1) % len(s.ring)
}

// Done releases one inflight slot for tenantID.
func (s *Scheduler) Done(tenantID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.byID[tenantID]; t != nil && t.inflight > 0 {
		t.inflight--
		s.cond.Broadcast()
	}
}

// Stop wakes all blocked Dequeues with ok=false and makes further
// Enqueues fail with ErrStopped. Queued items stay put for Drain.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	s.cond.Broadcast()
}

// Drain removes and returns every queued item (FIFO within a tenant,
// tenants in no particular order). Idempotent: each item is returned
// exactly once across all Drain calls.
func (s *Scheduler) Drain() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []any
	for _, t := range s.ring {
		for _, e := range t.q {
			out = append(out, e.v)
		}
		t.q = nil
		t.deficit = 0
		t.charged = false
		t.active = false
	}
	s.ring = nil
	s.cur = 0
	s.queued = 0
	return out
}

// Len is the total number of queued (not yet dequeued) items.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Capacity is the sum of all queue bounds.
func (s *Scheduler) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := 0
	for _, t := range s.byID {
		c += t.depth
	}
	return c
}

// Stats snapshots every tenant's counters, sorted by tenant ID.
func (s *Scheduler) Stats() []QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueueStats, 0, len(s.byID))
	for _, t := range s.byID {
		out = append(out, QueueStats{
			ID:           t.id,
			Weight:       t.weight,
			Depth:        len(t.q),
			Capacity:     t.depth,
			Inflight:     t.inflight,
			Enqueued:     t.enqueued,
			Dequeued:     t.dequeued,
			RejectedFull: t.rejectedFull,
			QueueWaitNs:  t.waitNs,
		})
	}
	sortStats(out)
	return out
}

func sortStats(stats []QueueStats) {
	for i := 1; i < len(stats); i++ {
		for j := i; j > 0 && stats[j].ID < stats[j-1].ID; j-- {
			stats[j], stats[j-1] = stats[j-1], stats[j]
		}
	}
}
