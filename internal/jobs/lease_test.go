package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestLeaseLostRefundsAttempt: an attempt that ends with ErrLeaseLost
// (the cluster coordinator's lease-expiry verdict) is refunded, not
// consumed — the job retries on the same budget, is journaled with the
// "lease-lost" code, and still succeeds with Attempts == 1.
func TestLeaseLostRefundsAttempt(t *testing.T) {
	var calls atomic.Int64
	exec := func(ctx context.Context, spec Spec) (Result, error) {
		if calls.Add(1) <= 2 {
			return Result{}, fmt.Errorf("cluster: lease lease-1 on node a expired: %w", ErrLeaseLost)
		}
		return Result{Proof: []byte("ok")}, nil
	}
	cfg := testConfig(t, exec)
	cfg.MaxAttempts = 2 // two lease losses would exhaust a non-refunding budget
	m := openManager(t, cfg)

	id, err := m.Submit(Spec{Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", info.State, info.Error)
	}
	if info.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (both lease losses refunded)", info.Attempts)
	}
	jm := m.Metrics()
	if jm.LeaseReassigns != 2 {
		t.Fatalf("lease reassigns = %d, want 2", jm.LeaseReassigns)
	}
	// Refunds are journaled as retrying records at the refunded attempt
	// with the lease-lost code, so crash replay restores the same budget.
	var leaseLost int
	for _, r := range journalRecords(t, cfg.Dir) {
		if r.State == recRetrying && r.Code == "lease-lost" {
			leaseLost++
			if r.Attempt != 0 {
				t.Errorf("lease-lost retrying record at attempt %d, want 0 (refunded)", r.Attempt)
			}
		}
	}
	if leaseLost != 2 {
		t.Fatalf("journaled %d lease-lost records, want 2", leaseLost)
	}
}

// TestLeaseLostDoesNotTripBreaker: lease losses are infrastructure
// verdicts about a worker node, not about the proving pipeline — they
// must not count toward the manager's failure breaker.
func TestLeaseLostDoesNotTripBreaker(t *testing.T) {
	var calls atomic.Int64
	exec := func(ctx context.Context, spec Spec) (Result, error) {
		if calls.Add(1) <= 3 {
			return Result{}, fmt.Errorf("expired: %w", ErrLeaseLost)
		}
		return Result{Proof: []byte("ok")}, nil
	}
	cfg := testConfig(t, exec)
	cfg.BreakerThreshold = 2 // trips on 2 consecutive internal failures
	m := openManager(t, cfg)

	id, err := m.Submit(Spec{Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state = %s, want done", info.State)
	}
	jm := m.Metrics()
	if jm.BreakerState != BreakerClosed {
		t.Fatalf("breaker = %v after lease losses, want closed", jm.BreakerState)
	}
	if jm.BreakerTrips != 0 {
		t.Fatalf("breaker trips = %d, want 0", jm.BreakerTrips)
	}
}

// TestLeaseLostCancelWins: a cancel requested while the attempt is out
// on a (subsequently lost) lease terminalizes the job as cancelled —
// the refund must not resurrect it.
func TestLeaseLostCancelWins(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(ctx context.Context, spec Spec) (Result, error) {
		close(started)
		<-release
		return Result{}, fmt.Errorf("expired: %w", ErrLeaseLost)
	}
	m := openManager(t, testConfig(t, exec))

	id, err := m.Submit(Spec{Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(release)
	info := waitTerminal(t, m, id)
	if info.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled (cancel wins over lease refund)", info.State)
	}
	if m.Metrics().LeaseReassigns != 0 {
		t.Fatalf("lease reassigns = %d, want 0", m.Metrics().LeaseReassigns)
	}
}

// TestLeaseLostInfiniteReassignBounded: refunds deliberately do not
// consume the attempt budget, so a pathological run of lease losses
// retries indefinitely rather than failing the job — but each refund
// must re-enqueue with backoff (not spin). Verify a long loss streak
// still converges and the job never fails.
func TestLeaseLostInfiniteReassignBounded(t *testing.T) {
	const losses = 10
	var calls atomic.Int64
	exec := func(ctx context.Context, spec Spec) (Result, error) {
		if calls.Add(1) <= losses {
			return Result{}, fmt.Errorf("expired: %w", ErrLeaseLost)
		}
		return Result{Proof: []byte("ok")}, nil
	}
	cfg := testConfig(t, exec)
	cfg.MaxAttempts = 2
	m := openManager(t, cfg)

	id, err := m.Submit(Spec{Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateDone || info.Attempts != 1 {
		t.Fatalf("state=%s attempts=%d, want done/1", info.State, info.Attempts)
	}
	if got := m.Metrics().LeaseReassigns; got != losses {
		t.Fatalf("lease reassigns = %d, want %d", got, losses)
	}
}

// TestLeaseLostSentinelIdentity: callers (the cluster package) alias
// this sentinel; wrapping chains must stay errors.Is-compatible.
func TestLeaseLostSentinelIdentity(t *testing.T) {
	wrapped := fmt.Errorf("cluster: lease x on node y expired: %w", ErrLeaseLost)
	if !errors.Is(wrapped, ErrLeaseLost) {
		t.Fatal("wrapped lease-lost error lost its identity")
	}
	if errors.Is(context.Canceled, ErrLeaseLost) || errors.Is(ErrLeaseLost, context.Canceled) {
		t.Fatal("lease-lost must be distinct from cancellation")
	}
}

// TestLeaseLostCrashReplayRestoresBudget: crash after a journaled
// lease-lost refund; reopening must restore the job at the refunded
// attempt and finish it on the original budget.
func TestLeaseLostCrashReplayRestoresBudget(t *testing.T) {
	dir := t.TempDir()
	blocked := make(chan struct{})
	execBlock := func(ctx context.Context, spec Spec) (Result, error) {
		select {
		case blocked <- struct{}{}:
		default:
		}
		return Result{}, fmt.Errorf("expired: %w", ErrLeaseLost)
	}
	cfg := testConfig(t, execBlock)
	cfg.Dir = dir
	cfg.MaxAttempts = 2
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(Spec{Tenant: "t0"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	// Wait until at least one refund is journaled, then "crash" (close
	// without draining semantics is the closest in-process analogue).
	deadline := time.Now().Add(10 * time.Second)
	for m.Metrics().LeaseReassigns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no refund journaled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()

	cfg2 := cfg
	cfg2.Exec = func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	}
	m2 := openManager(t, cfg2)
	info := waitTerminal(t, m2, id)
	if info.State != StateDone {
		t.Fatalf("state after replay = %s (err %q), want done", info.State, info.Error)
	}
	if info.Attempts != 1 {
		t.Fatalf("attempts after replay = %d, want 1 (refund survived the crash)", info.Attempts)
	}
}
