package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nocap/internal/zkerr"
)

// fuzzSeedCorpus builds the seed corpus for FuzzDecodeRecord from a
// REAL journal: a throwaway manager runs a handful of jobs (success,
// retry, cancel) and the corpus is the resulting journal's lines — the
// genuine wire format, not hand-written approximations — plus
// systematically damaged variants of them.
func fuzzSeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir, err := os.MkdirTemp("", "nocap-fuzz-journal-*")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			if string(spec.Payload) == `"retry-once"` {
				if spec.Tenant == "" {
					return Result{}, zkerr.Internalf("fuzz: injected transient failure")
				}
			}
			return Result{Proof: []byte("fuzz-proof"), Stats: json.RawMessage(`{"ns":1}`)}, nil
		},
		Workers: 2, MaxPending: 16, Seed: 1,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		f.Fatal(err)
	}
	ids := make([]string, 0, 3)
	for _, spec := range []Spec{
		{Payload: json.RawMessage(`{"n":256}`), Tenant: "acme"},
		{Payload: json.RawMessage(`"retry-once"`), Tenant: "acme"},
		{Payload: json.RawMessage(`"plain"`)},
	} {
		id, err := m.Submit(spec)
		if err != nil {
			f.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := m.Wait(ctx, id); err != nil {
			f.Fatal(err)
		}
		cancel()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()

	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		f.Fatal(err)
	}
	var corpus [][]byte
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		corpus = append(corpus, []byte(line))
		// Truncations: torn mid-record at several depths.
		for _, frac := range []int{4, 2} {
			corpus = append(corpus, []byte(line[:len(line)/frac]))
		}
		// Bit flip in the middle (typically inside a field value), with
		// the stored checksum left behind.
		flipped := []byte(line)
		flipped[len(flipped)/2] ^= 0x20
		corpus = append(corpus, flipped)
	}
	// Checksum-valid but semantically bogus: a record whose fields are
	// garbage yet whose crc is honestly computed over them, so only
	// semantic validation can reject it.
	bogus := `{"seq":1,"job":"j-x","state":"zombie"}`
	c := crc32.ChecksumIEEE([]byte(bogus))
	corpus = append(corpus,
		[]byte(fmt.Sprintf(`{"seq":1,"job":"j-x","state":"zombie","crc":%d}`, c)),
		[]byte(`{"seq":1,"job":"","state":"done","crc":12345}`),
		[]byte(`{"seq":1,"job":"j-x","state":"done","attempt":-3}`),
		[]byte(`{}`), []byte(`null`), []byte(`42`), []byte(``), []byte("\x00\xff\xfe"))
	return corpus
}

// FuzzDecodeRecord pins the journal decoder's contract under hostile
// bytes: it must never panic, every rejection must classify as
// zkerr.ErrMalformedProof, and every acceptance must satisfy the
// decoder's own invariants (non-empty job, known state, non-negative
// counters, verified checksum when present).
func FuzzDecodeRecord(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		r, err := decodeRecord(line)
		if err != nil {
			if zkerr.Code(err) != "malformed-proof" {
				t.Fatalf("rejection escaped the taxonomy: %v (code %q)", err, zkerr.Code(err))
			}
			return
		}
		if r.Job == "" {
			t.Fatalf("accepted record without job id: %q", line)
		}
		if !validRecState(r.State) {
			t.Fatalf("accepted record with state %q: %q", r.State, line)
		}
		if r.Attempt < 0 || r.ProofBytes < 0 || r.BackoffMS < 0 {
			t.Fatalf("accepted record with negative counters: %+v", r)
		}
		if r.CRC != nil {
			// Re-encoding an accepted record must verify again.
			reline, err := encodeRecord(r)
			if err != nil {
				t.Fatalf("re-encode accepted record: %v", err)
			}
			if _, err := decodeRecord(reline[:len(reline)-1]); err != nil {
				t.Fatalf("re-encoded record rejected: %v", err)
			}
		}
	})
}
