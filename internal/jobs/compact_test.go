package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// logBuffer collects Config.Logf output for structured-log assertions.
type logBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *logBuffer) logf(format string, args ...any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, fmt.Sprintf(format, args...))
}

func (b *logBuffer) contains(sub string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// marshalList canonicalizes a manager's job table for state-equivalence
// comparisons.
func marshalList(t *testing.T, m *Manager) []byte {
	t.Helper()
	b, err := json.MarshalIndent(m.List(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCompactionBoundsJournal: the background compactor must rewrite
// the journal as snapshot + tail once the record cap is crossed, the
// journal must stay bounded under continued traffic, and a restart must
// recover the identical job table from snapshot-then-tail.
func TestCompactionBoundsJournal(t *testing.T) {
	dir := t.TempDir()
	var logs logBuffer
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: append([]byte("proof-"), spec.Payload...)}, nil
	})
	cfg.Dir = dir
	cfg.JournalMaxRecords = 12
	cfg.CompactCheck = 5 * time.Millisecond
	cfg.Logf = logs.logf
	m := openManager(t, cfg)

	ids := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		id, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, id)
		waitTerminal(t, m, id)
	}
	// 20 jobs × 3 records is well past the cap; the compactor must have
	// run and the journal must sit under cap + one compaction period of
	// traffic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mm := m.Metrics()
		if mm.Compactions >= 1 && mm.JournalRecords < 2*cfg.JournalMaxRecords {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never bounded the journal: %+v", mm)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mm := m.Metrics()
	if mm.SnapshotBytes == 0 {
		t.Fatalf("snapshot bytes not reported: %+v", mm)
	}
	if !logs.contains("event=compaction") || !logs.contains("trigger=journal-records") {
		t.Fatalf("no structured compaction log line; got %v", logs.lines)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	before := marshalList(t, m)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()

	// Recovery replays snapshot-then-tail into the identical table.
	cfg2 := cfg
	m2 := openManager(t, cfg2)
	if after := marshalList(t, m2); !bytes.Equal(before, after) {
		t.Fatalf("snapshot+tail recovery diverged:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	for i, id := range ids {
		proof, err := m2.Proof(id)
		if err != nil {
			t.Fatalf("Proof(%s) after compacted recovery: %v", id, err)
		}
		if want := fmt.Sprintf("proof-%d", i); string(proof) != want {
			t.Fatalf("proof %q, want %q", proof, want)
		}
	}
	// Post-compaction appends continue the sequence without colliding
	// with snapshot-folded records.
	id, err := m2.Submit(Spec{Payload: json.RawMessage(`99`)})
	if err != nil {
		t.Fatalf("Submit after compacted recovery: %v", err)
	}
	waitTerminal(t, m2, id)
}

// TestCompactionRetentionGC: terminal jobs older than the retention
// window are dropped from the table and their proof files deleted;
// younger and non-terminal jobs survive.
func TestCompactionRetentionGC(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("p")}, nil
	})
	cfg.Dir = dir
	cfg.Retention = 30 * time.Millisecond
	m := openManager(t, cfg)

	old, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, old)
	oldProof := filepath.Join(dir, proofsDirName, old+".bin")
	if _, err := os.Stat(oldProof); err != nil {
		t.Fatalf("proof file before GC: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let the old job age past retention
	young, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, young)

	if err := m.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := m.Get(old); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("retention-expired job still known: %v", err)
	}
	if _, err := os.Stat(oldProof); !os.IsNotExist(err) {
		t.Fatalf("GC'd proof file still on disk: %v", err)
	}
	if info, err := m.Get(young); err != nil || info.State != StateDone {
		t.Fatalf("young job: %+v, %v", info, err)
	}
	if mm := m.Metrics(); mm.RetiredJobs != 1 {
		t.Fatalf("retired %d, want 1", mm.RetiredJobs)
	}
	// GC survives restart: the expired job stays gone.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	m2 := openManager(t, cfg)
	if _, err := m2.Get(old); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("GC'd job resurrected by replay: %v", err)
	}
	if info, err := m2.Get(young); err != nil || info.State != StateDone {
		t.Fatalf("young job after restart: %+v, %v", info, err)
	}
}

// TestCompactionRepairsJournalLost: a terminal state whose journal
// append failed becomes durable once a snapshot lands, so compaction
// clears the journal_lost hazard flag and a restart recovers the
// terminal state instead of re-running the job.
func TestCompactionRepairsJournalLost(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("p")}, nil
	})
	cfg.Dir = dir
	m := openManager(t, cfg)
	// Fail the done append and its retry (hits 3 and 4: accepted=1,
	// running=2), so the job terminalizes with journal_lost.
	faultinject.MustArm(faultinject.Plan{Point: fiJournalAppend, Kind: faultinject.Error, Trigger: 3, Count: 2})
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, m, id)
	faultinject.Disarm()
	if info.State != StateDone || !info.JournalLost {
		t.Fatalf("want done+journal_lost, got %+v", info)
	}
	if err := m.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if info, _ = m.Get(id); info.JournalLost {
		t.Fatal("journal_lost still set after the snapshot made the state durable")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	m2 := openManager(t, cfg)
	if info, err := m2.Get(id); err != nil || info.State != StateDone {
		t.Fatalf("snapshot-repaired job after restart: %+v, %v", info, err)
	}
}

// ---------------------------------------------------------------------
// SIGKILL-mid-compaction chaos (the tentpole's crash matrix): a hard
// kill at each of the three compaction windows — before the snapshot
// rename, after it (before the tail swap), and during the swap (tail
// temp written, final rename pending) — must recover the exact job
// state a no-crash run has. The child process records its expected
// state to expected.json before arming the kill; the parent reopens the
// data directory and compares.

const (
	compactCrashChildEnv = "NOCAP_JOBS_COMPACT_CRASH_CHILD"
	compactCrashDirEnv   = "NOCAP_JOBS_COMPACT_CRASH_DIR"
	compactCrashPointEnv = "NOCAP_JOBS_COMPACT_CRASH_POINT"
)

func TestCompactCrashChildProcess(t *testing.T) {
	if os.Getenv(compactCrashChildEnv) != "1" {
		t.Skip("crash-test child (driven by TestCompactCrashWindowsRecoverIdenticalState)")
	}
	dir := os.Getenv(compactCrashDirEnv)
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: append([]byte("proof-"), spec.Payload...)}, nil
		},
		Workers: 2, MaxPending: 16, Seed: 1,
	})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	for i := 0; i < 6; i++ {
		id, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))})
		if err != nil {
			t.Fatalf("child Submit %d: %v", i, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := m.Wait(ctx, id); err != nil {
			t.Fatalf("child Wait: %v", err)
		}
		cancel()
	}
	expected, err := json.MarshalIndent(m.List(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "expected.json"), expected, 0o644); err != nil {
		t.Fatal(err)
	}
	faultinject.MustArm(faultinject.Plan{
		Point: os.Getenv(compactCrashPointEnv),
		Kind:  faultinject.Hook,
		Hook: func() error {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // SIGKILL delivery is asynchronous; never proceed
		},
	})
	_ = m.Compact()
	t.Fatal("child survived its own SIGKILL window") // unreachable on success
}

func TestCompactCrashWindowsRecoverIdenticalState(t *testing.T) {
	for _, point := range []string{fiCompactSnapshot, fiCompactTruncate, fiCompactSwap} {
		t.Run(point, func(t *testing.T) {
			snap := leakcheck.Take()
			dir := t.TempDir()
			child := exec.Command(os.Args[0], "-test.run=^TestCompactCrashChildProcess$", "-test.v")
			child.Env = append(os.Environ(),
				compactCrashChildEnv+"=1", compactCrashDirEnv+"="+dir, compactCrashPointEnv+"="+point)
			out, err := child.CombinedOutput()
			var exitErr *exec.ExitError
			if !errors.As(err, &exitErr) {
				t.Fatalf("child did not die by signal: err=%v\n%s", err, out)
			}
			if status, ok := exitErr.Sys().(syscall.WaitStatus); !ok || status.Signal() != syscall.SIGKILL {
				t.Fatalf("child exit %v, want SIGKILL\n%s", exitErr, out)
			}

			expected, err := os.ReadFile(filepath.Join(dir, "expected.json"))
			if err != nil {
				t.Fatalf("child never recorded its pre-crash state: %v\n%s", err, out)
			}
			m, err := Open(Config{
				Dir: dir,
				Exec: func(ctx context.Context, spec Spec) (Result, error) {
					return Result{Proof: []byte("post-crash-reexec")}, nil
				},
				Workers: 2, MaxPending: 16, Seed: 1,
			})
			if err != nil {
				t.Fatalf("reopen after %s kill: %v", point, err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				m.Close(ctx)
			}()
			got := marshalList(t, m)
			if !bytes.Equal(expected, got) {
				t.Fatalf("state after SIGKILL at %s diverged:\nexpected:\n%s\ngot:\n%s", point, expected, got)
			}
			// Every done job's proof bytes survive the crash too.
			var infos []JobInfo
			if err := json.Unmarshal(expected, &infos); err != nil {
				t.Fatal(err)
			}
			for i, info := range infos {
				proof, err := m.Proof(info.ID)
				if err != nil {
					t.Fatalf("Proof(%s) after %s kill: %v", info.ID, point, err)
				}
				if want := fmt.Sprintf("proof-%d", i); string(proof) != want {
					t.Fatalf("proof %q, want %q", proof, want)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			m.Close(ctx)
			cancel()
			snap.Check(t)
		})
	}
}

// ---------------------------------------------------------------------
// Degraded mode.

// TestDegradedModeEntersAndSelfRecovers: sustained journal failures
// flip the manager into degraded mode (Submit → ErrDegraded), the
// probe loop exits it once the disk heals, and both transitions emit
// structured log lines.
func TestDegradedModeEntersAndSelfRecovers(t *testing.T) {
	defer faultinject.Disarm()
	var logs logBuffer
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	cfg.DegradedThreshold = 3
	cfg.ProbeInterval = 10 * time.Millisecond
	cfg.Logf = logs.logf
	m := openManager(t, cfg)

	// A sustained outage: every journal append fails until disarmed.
	faultinject.MustArm(faultinject.Plan{Point: fiJournalAppend, Kind: faultinject.Error, Count: 1 << 30})
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(Spec{}); zkerr.Code(err) != "internal" {
			t.Fatalf("Submit %d during outage: %v, want internal-class error", i, err)
		}
	}
	if _, err := m.Submit(Spec{}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Submit past threshold: %v, want ErrDegraded", err)
	}
	if deg, _ := m.Degraded(); !deg {
		t.Fatal("Degraded() false past threshold")
	}
	if !logs.contains("event=degraded_enter") {
		t.Fatalf("no degraded_enter log line; got %v", logs.lines)
	}
	// Reads keep working while degraded.
	if got := len(m.List()); got != 0 {
		t.Fatalf("List len %d while degraded, want 0", got)
	}

	// The disk heals: the next probe write succeeds and exits degraded.
	faultinject.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if deg, _ := m.Degraded(); !deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never exited degraded mode")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !logs.contains("event=degraded_exit") {
		t.Fatalf("no degraded_exit log line; got %v", logs.lines)
	}
	mm := m.Metrics()
	if mm.DegradedEntries != 1 || mm.ProbeWrites == 0 {
		t.Fatalf("degraded entries %d probe writes %d", mm.DegradedEntries, mm.ProbeWrites)
	}
	// Healthy again end to end.
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	if info := waitTerminal(t, m, id); info.State != StateDone {
		t.Fatalf("state %s, want done", info.State)
	}
	// Probe records never become jobs on replay.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	m2 := openManager(t, cfg)
	if _, err := m2.Get(probeJobID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("probe record replayed as a job: %v", err)
	}
}

// TestShortWriteLeavesParseableJournal: an injected short write (half
// the record lands, then the error) must not poison the journal — the
// failed append truncates back to the last clean record, the next
// append lands on a clean boundary, and replay sees zero torn or
// corrupt records.
func TestShortWriteLeavesParseableJournal(t *testing.T) {
	defer faultinject.Disarm()
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	faultinject.MustArm(faultinject.Plan{Point: fiJournalWrite, Kind: faultinject.Error})
	if _, err := m.Submit(Spec{}); err == nil {
		t.Fatal("Submit with injected short write succeeded")
	}
	if !faultinject.Fired() {
		t.Fatal("short-write fault never fired")
	}
	faultinject.Disarm()
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit after short write: %v", err)
	}
	waitTerminal(t, m, id)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()

	data, err := os.ReadFile(filepath.Join(cfg.Dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := parseAll(data)
	if err != nil {
		t.Fatalf("reparse after short write: %v", err)
	}
	if info.torn != 0 || info.corrupt != 0 {
		t.Fatalf("torn %d corrupt %d after truncate-back recovery, want 0/0", info.torn, info.corrupt)
	}
	m2 := openManager(t, cfg)
	if info, err := m2.Get(id); err != nil || info.State != StateDone {
		t.Fatalf("job after short-write recovery: %+v, %v", info, err)
	}
}

// TestFsyncFailureRollsBackRecord: an injected fsync failure after a
// clean write must also roll the tail back — a record whose durability
// is unknown is treated as never written.
func TestFsyncFailureRollsBackRecord(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	jl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	faultinject.MustArm(faultinject.Plan{Point: fiJournalFsync, Kind: faultinject.Error})
	if err := jl.append(record{Job: "j-a", State: recAccepted}); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	faultinject.Disarm()
	st, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("journal %d bytes after rolled-back append, want 0", st.Size())
	}
	if err := jl.append(record{Job: "j-a", State: recAccepted}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if jl.records != 1 {
		t.Fatalf("records %d, want 1", jl.records)
	}
}

// ---------------------------------------------------------------------
// Orphan sweep.

const (
	orphanCrashChildEnv = "NOCAP_JOBS_ORPHAN_CRASH_CHILD"
	orphanCrashDirEnv   = "NOCAP_JOBS_ORPHAN_CRASH_DIR"
)

// TestOrphanCrashChildProcess dies by its own SIGKILL exactly between a
// proof's temp-file write and its rename, stranding a *.tmp-* file.
func TestOrphanCrashChildProcess(t *testing.T) {
	if os.Getenv(orphanCrashChildEnv) != "1" {
		t.Skip("crash-test child (driven by TestOrphanTempSweptOnRecovery)")
	}
	dir := os.Getenv(orphanCrashDirEnv)
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: []byte("doomed")}, nil
		},
		Workers: 1, MaxPending: 4, Seed: 1,
	})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	faultinject.MustArm(faultinject.Plan{
		Point: fiProofPersist,
		Kind:  faultinject.Hook,
		Hook: func() error {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		},
	})
	if _, err := m.Submit(Spec{Payload: json.RawMessage(`1`)}); err != nil {
		t.Fatalf("child Submit: %v", err)
	}
	time.Sleep(time.Minute) // the self-SIGKILL in the persist path ends this
}

// TestOrphanTempSweptOnRecovery: a crash between proof temp-write and
// rename strands a temp file; recovery must delete and count it, and
// the interrupted job must still reach done.
func TestOrphanTempSweptOnRecovery(t *testing.T) {
	dir := t.TempDir()
	child := exec.Command(os.Args[0], "-test.run=^TestOrphanCrashChildProcess$", "-test.v")
	child.Env = append(os.Environ(), orphanCrashChildEnv+"=1", orphanCrashDirEnv+"="+dir)
	out, err := child.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("child did not die: err=%v\n%s", err, out)
	}
	temps, _ := filepath.Glob(filepath.Join(dir, proofsDirName, "*.tmp-*"))
	if len(temps) == 0 {
		t.Fatalf("child left no stranded proof temp file\n%s", out)
	}

	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: []byte("recovered")}, nil
		},
		Workers: 1, MaxPending: 4, Seed: 1,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	}()
	if mm := m.Metrics(); mm.OrphansSwept < int64(len(temps)) {
		t.Fatalf("orphans swept %d, want >= %d", mm.OrphansSwept, len(temps))
	}
	if left, _ := filepath.Glob(filepath.Join(dir, proofsDirName, "*.tmp-*")); len(left) != 0 {
		t.Fatalf("temp files survived the sweep: %v", left)
	}
	for _, info := range m.List() {
		fin := waitTerminal(t, m, info.ID)
		if fin.State != StateDone {
			t.Fatalf("interrupted job %s: %s (err %q), want done", info.ID, fin.State, fin.Error)
		}
	}
}

// TestOrphanUnreferencedProofSwept: proof files no loaded job
// references (stranded by a crash between a compaction's snapshot
// rename and its proof GC) are deleted on recovery; referenced ones
// survive.
func TestOrphanUnreferencedProofSwept(t *testing.T) {
	dir := t.TempDir()
	proofs := filepath.Join(dir, proofsDirName)
	if err := os.MkdirAll(proofs, 0o755); err != nil {
		t.Fatal(err)
	}
	live := filepath.Join(proofs, "j-live.bin")
	ghost := filepath.Join(proofs, "j-ghost.bin")
	for _, p := range []string{live, ghost} {
		if err := os.WriteFile(p, []byte("proof"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw := recLine(t, record{Seq: 1, Job: "j-live", State: recAccepted}) +
		recLine(t, record{Seq: 2, Job: "j-live", State: recDone, Attempt: 1, ProofFile: live, ProofBytes: 5})
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	})
	cfg.Dir = dir
	m := openManager(t, cfg)
	if _, err := os.Stat(ghost); !os.IsNotExist(err) {
		t.Fatalf("unreferenced proof survived the sweep: %v", err)
	}
	if proof, err := m.Proof("j-live"); err != nil || string(proof) != "proof" {
		t.Fatalf("referenced proof: %q, %v", proof, err)
	}
	if mm := m.Metrics(); mm.OrphansSwept != 1 {
		t.Fatalf("orphans swept %d, want 1", mm.OrphansSwept)
	}
}
