// Package jobs is the durable asynchronous job layer of the proving
// service (DESIGN.md §11). A Manager accepts proving jobs, journals
// every state transition to an append-only fsync'd JSONL file before
// acknowledging it, executes attempts on a bounded worker pool (its own
// or, via Gate, the HTTP server's), retries transient failures with
// capped exponential backoff and full jitter, sheds load through a
// consecutive-internal-failure circuit breaker, and — after a crash —
// replays the journal so every job that was ever accepted still reaches
// exactly one terminal state.
//
// The package deliberately does not import the prover: the Exec
// callback produces the proof bytes, so the job machinery is testable
// with synthetic workloads and the server wires in the real pipeline.
package jobs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// fiBatchExec fires once per member at the top of every batched proving
// attempt (before the member is handed to BatchExec), so chaos tests
// can deterministically fail the Nth member of a batch without touching
// its batch-mates.
var fiBatchExec = faultinject.Register("jobs.batch.exec")

// fiAttemptExec fires at the top of every proving attempt, inside the
// panic-containment boundary; chaos tests use it to exercise the retry
// machinery without involving the prover.
var fiAttemptExec = faultinject.Register("jobs.attempt.exec")

// Sentinel errors returned by the Manager API. The serving layer maps
// them to HTTP statuses (breaker-open → 503 + Retry-After, queue-full →
// 429 + Retry-After, unknown → 404, terminal → 409, closed → 503).
var (
	ErrClosed      = errors.New("jobs: manager closed")
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrBreakerOpen = errors.New("jobs: circuit breaker open")
	ErrUnknownJob  = errors.New("jobs: unknown job")
	ErrTerminal    = errors.New("jobs: job already in a terminal state")
	// ErrTenantQuota: the submitting tenant is at its live-job cap
	// (Config.TenantLimit); a per-tenant 429, never caused by other
	// tenants' jobs.
	ErrTenantQuota = errors.New("jobs: tenant job quota exceeded")
	// ErrDegraded: the data disk is failing (DegradedThreshold
	// consecutive journal/snapshot/proof writes failed), so new jobs —
	// whose acceptance contract is durability — are refused until a
	// probe write succeeds. Synchronous proving, which promises nothing
	// durable, keeps working; the server maps this to a typed 503.
	ErrDegraded = errors.New("jobs: durability degraded: data disk is failing")
	// ErrLeaseLost: a cluster worker's lease on this attempt expired
	// before a completion arrived (node death, partition, hang). The
	// attempt never reached a prover verdict, so finishAttempt refunds
	// it — journal-backed, like crash replay — and re-enqueues instead
	// of consuming retry budget or feeding the breaker.
	ErrLeaseLost = errors.New("jobs: worker lease lost")
)

// State is a job's externally visible lifecycle state. A job moves
// accepted → running → {done, failed, cancelled}; retries move it back
// to accepted with the attempt counter advanced.
type State string

const (
	StateAccepted  State = "accepted"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is one of the three terminal states.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec describes a job. Payload is caller-defined (the HTTP server
// stores its ProveRequest here verbatim); the Manager persists it
// opaquely in the journal's accepted record so recovery can re-run it.
// Tenant attributes the job to a tenant for quota accounting; it rides
// in the accepted record, so attribution survives crashes and replay
// restores per-tenant accounting exactly.
type Spec struct {
	Payload json.RawMessage `json:"payload,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
}

// Result is a successful attempt's output: the proof bytes (persisted
// atomically under <dir>/proofs/) and optional caller-defined stats
// JSON surfaced on GET and journaled with the done record. Cached marks
// a proof served from the content-addressed cache rather than proven by
// this attempt.
type Result struct {
	Proof  []byte
	Stats  json.RawMessage
	Cached bool
}

// Exec runs one proving attempt. It must honour ctx cancellation; the
// Manager wraps every call in zkerr.RecoverTo, so a panicking attempt
// surfaces as a retryable internal error rather than a crash.
type Exec func(ctx context.Context, spec Spec) (Result, error)

// Gate, when non-nil, runs an attempt on an external worker pool: it
// must execute run synchronously (blocking until run returns) or return
// an error *without* having called run. The server's Gate enqueues into
// its bounded HTTP worker pool so sync requests and async attempts
// share the same concurrency budget; tenantID lets it join the right
// per-tenant scheduler queue, so async attempts are subject to the same
// fairness policy as synchronous requests.
type Gate func(ctx context.Context, tenantID string, run func()) error

// GateN is the batch-aware variant of Gate: cost is the number of jobs
// the gated run will prove (the batch size), so the external scheduler
// can charge the tenant's fairness account for the whole batch instead
// of letting batching bypass DRR accounting. Like Gate, it must execute
// run synchronously or return an error without having called run.
type GateN func(ctx context.Context, tenantID string, cost int, run func()) error

// BatchMember is one job of a batch handed to BatchExec. Ctx is the
// member's own attempt context: cancelling one member (DELETE /jobs/id)
// cancels only that member's Ctx, so BatchExec must check it per member
// and must not let one member's cancellation or failure disturb its
// batch-mates.
type BatchMember struct {
	ID   string
	Spec Spec
	Ctx  context.Context
}

// BatchOutcome is one member's attempt outcome, classified exactly like
// a solo attempt's (Result, error) pair.
type BatchOutcome struct {
	Result Result
	Err    error
}

// BatchExec proves a whole batch in one call, amortizing shared
// structure across the members. It must return exactly one outcome per
// member, index-aligned, and must honour each member's Ctx
// independently. The Manager wraps every call in panic containment.
type BatchExec func(ctx context.Context, members []BatchMember) []BatchOutcome

// Config configures a Manager. Zero fields take the documented
// defaults; Dir and Exec are required.
type Config struct {
	// Dir is the data directory holding journal.jsonl and proofs/.
	Dir string
	// Exec produces proofs; required.
	Exec Exec
	// Gate optionally routes attempts onto an external worker pool.
	Gate Gate
	// Workers is the number of dispatcher goroutines (default 2). With
	// a Gate each dispatcher blocks inside the external pool, so this
	// caps the Manager's concurrent demand on it.
	Workers int
	// MaxPending bounds non-terminal jobs; Submit beyond it returns
	// ErrQueueFull (default 64).
	MaxPending int
	// MaxAttempts is the per-job attempt budget (default 4).
	MaxAttempts int
	// BackoffBase/BackoffMax shape retry backoff: the delay before
	// attempt n+1 is uniform in (0, min(BackoffMax, BackoffBase·2^(n-1))]
	// — capped exponential with full jitter (defaults 50ms / 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive internal failures trip the breaker
	// (default 5); BreakerCooldown is the open → half-open delay
	// (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed seeds backoff jitter for deterministic tests (0 → time-based).
	Seed int64
	// Now overrides the breaker clock in tests.
	Now func() time.Time
	// TenantLimit, when non-nil, returns the live-job cap for a tenant
	// (<= 0 means unlimited). Submit beyond the cap returns
	// ErrTenantQuota. Evaluated under the manager lock against the
	// replay-restored per-tenant counts, so quotas hold across crashes.
	TenantLimit func(tenantID string) int
	// JournalMaxBytes / JournalMaxRecords cap the journal before the
	// background compactor rewrites it as snapshot + tail (DESIGN.md
	// §13). Zero disables that cap; with both zero no compactor runs
	// and the journal grows without bound (the pre-v2 behaviour).
	JournalMaxBytes   int64
	JournalMaxRecords int64
	// Retention is how long terminal jobs (and their proof files) stay
	// queryable after finishing; compaction garbage-collects older
	// ones. Zero keeps them forever.
	Retention time.Duration
	// CompactCheck is the compactor's cap-polling interval (default 1s).
	CompactCheck time.Duration
	// DegradedThreshold consecutive disk-write failures (journal
	// append, snapshot write, proof persist) flip the manager into
	// degraded mode, where Submit returns ErrDegraded (default 3).
	DegradedThreshold int
	// ProbeInterval is how often degraded mode probes the disk with a
	// journaled no-op write; the first success exits degraded mode
	// (default 1s).
	ProbeInterval time.Duration
	// Logf receives one structured line per degraded-mode entry/exit
	// and per compaction (default log.Printf).
	Logf func(format string, args ...any)
	// BatchKey, when set, enables the batch planner (DESIGN.md §15):
	// ready jobs whose specs map to the same key for the same tenant
	// within BatchWindow of each other coalesce into one batched attempt
	// proved through BatchExec, amortizing shared structure. Return
	// ok=false for specs that must not batch; they dispatch solo through
	// Exec. Requires BatchExec.
	BatchKey func(spec Spec) (key string, ok bool)
	// BatchExec proves a coalesced batch; required when BatchKey is set.
	// A group that closes with a single member bypasses it and runs
	// through the solo Exec path unchanged.
	BatchExec BatchExec
	// GateN, when set, is preferred over Gate for routing attempts onto
	// the external worker pool: it carries the batch size as an explicit
	// cost so coalescing cannot bypass per-tenant fairness accounting
	// (one batch of k jobs is charged like k solo jobs).
	GateN GateN
	// BatchWindow is how long the planner holds a group open for
	// batch-mates after its first job arrives (default 5ms); BatchMax
	// caps the batch size, flushing a group early when reached
	// (default 8).
	BatchWindow time.Duration
	BatchMax    int
}

func (c Config) withDefaults() (Config, error) {
	if c.Dir == "" {
		return c, zkerr.Usagef("jobs: Config.Dir is required")
	}
	if c.Exec == nil {
		return c, zkerr.Usagef("jobs: Config.Exec is required")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.CompactCheck <= 0 {
		c.CompactCheck = time.Second
	}
	if c.DegradedThreshold <= 0 {
		c.DegradedThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.BatchKey != nil && c.BatchExec == nil {
		return c, zkerr.Usagef("jobs: Config.BatchKey requires Config.BatchExec")
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 5 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	return c, nil
}

// JobInfo is the externally visible snapshot of one job; its JSON form
// is what GET /jobs/{id} returns.
type JobInfo struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Tenant      string `json:"tenant,omitempty"`
	Attempts    int    `json:"attempts"`
	MaxAttempts int    `json:"max_attempts"`
	Recovered   bool   `json:"recovered,omitempty"`
	// Cached marks a done job whose proof came from the proof cache.
	Cached bool `json:"cached,omitempty"`
	// CancelRequested marks a non-terminal job with a cancel in flight
	// (the running attempt's context is cancelled; the job terminalizes
	// when it unwinds).
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// JournalLost marks a terminal state that could not be journaled
	// (persistent append failure): the state shown here is not durable,
	// and a restart will replay the job from its last durable record.
	JournalLost bool            `json:"journal_lost,omitempty"`
	Error       string          `json:"error,omitempty"`
	Code        string          `json:"code,omitempty"`
	ProofBytes  int             `json:"proof_bytes,omitempty"`
	Stats       json.RawMessage `json:"stats,omitempty"`
}

// Metrics is a point-in-time snapshot for the metrics endpoint.
type Metrics struct {
	Accepted            int64
	Done                int64
	Failed              int64
	Cancelled           int64
	Retries             int64
	Active              int64
	RecoveredJobs       int64
	TornRecords         int64
	JournalRecords      int64
	JournalBytes        int64
	JournalAppendErrors int64
	JournalLostJobs     int64
	BreakerState        BreakerState
	BreakerTrips        int64
	// CorruptRecords counts journal records skipped on replay for bad
	// checksums or bogus content (distinct from torn tails).
	CorruptRecords int64
	// Compactions / SnapshotBytes / RetiredJobs describe the compactor:
	// completed cycles, the live snapshot's size, and terminal jobs
	// garbage-collected past the retention window.
	Compactions   int64
	SnapshotBytes int64
	RetiredJobs   int64
	// OrphansSwept counts stranded temp files and unreferenced proof
	// files deleted during recovery.
	OrphansSwept int64
	// Degraded state: whether Submit is refusing jobs over disk
	// failures, how many times that mode was entered, the current
	// consecutive-failure streak, and probe writes attempted.
	Degraded        bool
	DegradedEntries int64
	DiskFailStreak  int64
	ProbeWrites     int64
	// Batch planner counters (DESIGN.md §15): batched attempts
	// dispatched, jobs proved through them, the most recent batch's
	// size, and jobs that skipped redundant shared-structure work
	// because a batch-mate already did it (size−1 per batch).
	Batches             int64
	BatchJobs           int64
	LastBatchSize       int64
	BatchAmortizedSaves int64
	// LeaseReassigns counts attempts refunded because a cluster
	// worker's lease expired (node death → journal-backed reassignment).
	LeaseReassigns int64
}

// jobRec is the Manager's in-memory view of one job.
type jobRec struct {
	id              string
	spec            Spec
	state           State
	attempt         int
	lastErr         string
	lastCode        string
	recovered       bool
	cached          bool
	cancelRequested bool
	journalLost     bool
	proofFile       string
	proofBytes      int
	stats           json.RawMessage
	terminalAt      time.Time          // when the job terminalized (retention GC clock)
	cancel          context.CancelFunc // set while an attempt runs
	timer           *time.Timer        // pending retry / requeue timer
	done            chan struct{}      // closed on terminal transition
}

func (j *jobRec) terminal() bool { return j.state.Terminal() }

func (j *jobRec) info(maxAttempts int) JobInfo {
	return JobInfo{
		ID:              j.id,
		State:           j.state,
		Tenant:          j.spec.Tenant,
		Attempts:        j.attempt,
		MaxAttempts:     maxAttempts,
		Recovered:       j.recovered,
		Cached:          j.cached,
		CancelRequested: j.cancelRequested && !j.terminal(),
		JournalLost:     j.journalLost,
		Error:           j.lastErr,
		Code:            j.lastCode,
		ProofBytes:      j.proofBytes,
		Stats:           j.stats,
	}
}

// Manager is the durable job manager. Open constructs one; all methods
// are safe for concurrent use.
type Manager struct {
	cfg        Config
	journal    *journal
	breaker    *breaker
	baseCtx    context.Context
	cancelBase context.CancelFunc
	quit       chan struct{}
	ready      chan *jobRec
	// batches feeds coalesced batches from the batcher goroutine to the
	// workers; nil when batching is disabled (no BatchKey), in which
	// case workers consume ready directly.
	batches chan []*jobRec
	wg      sync.WaitGroup

	randMu sync.Mutex
	rand   *rand.Rand

	mu      sync.Mutex
	byID    map[string]*jobRec
	order   []*jobRec
	closing bool
	// activeTenant counts live (non-terminal) jobs per tenant, restored
	// by replay so TenantLimit quotas survive crashes.
	activeTenant map[string]int64

	active      int64
	accepted    int64
	doneCount   int64
	failedCount int64
	cancelCount int64
	retries     int64
	recovered   int64
	torn        int64
	journalErrs int64
	journalLost int64

	// Durable-state lifecycle counters (DESIGN.md §13), under mu.
	corruptRecs   int64
	orphansSwept  int64
	compactions   int64
	snapshotBytes int64
	retired       int64
	probeWrites   int64

	// Degraded-mode state machine, under mu: diskFails is the
	// consecutive disk-write failure streak; at DegradedThreshold the
	// manager enters degraded mode, and the first successful disk write
	// (probe or otherwise) exits it.
	diskFails       int64
	degraded        bool
	degradedSince   time.Time
	degradedEntries int64

	// Batch planner counters (under mu).
	batchCount    int64
	batchJobs     int64
	lastBatchSize int64
	batchSaves    int64

	leaseReassigns int64

	// compactMu serializes compaction cycles (it is never taken while
	// holding mu).
	compactMu sync.Mutex
}

// Open opens (creating if absent) the data directory, replays the
// journal — re-enqueueing every job that was accepted or running at the
// last shutdown or crash — and starts the dispatcher pool.
func Open(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	jl, info, err := openJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	baseCtx, cancelBase := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		journal:    jl,
		breaker:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now),
		baseCtx:    baseCtx,
		cancelBase: cancelBase,
		quit:       make(chan struct{}),
		ready:      make(chan *jobRec, 2*cfg.MaxPending+16),
		rand:         rand.New(rand.NewSource(cfg.Seed)),
		byID:         make(map[string]*jobRec),
		activeTenant: make(map[string]int64),
	}
	m.torn = info.torn
	m.corruptRecs = info.corrupt
	m.orphansSwept = info.orphanTemps
	if err := m.replay(info); err != nil {
		jl.close()
		cancelBase()
		return nil, err
	}
	m.orphansSwept += m.sweepOrphanProofs()
	if cfg.BatchKey != nil {
		m.batches = make(chan []*jobRec, 2*cfg.MaxPending+16)
		m.wg.Add(1)
		go m.batcher()
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if cfg.JournalMaxBytes > 0 || cfg.JournalMaxRecords > 0 {
		m.wg.Add(1)
		go m.compactor()
	}
	m.wg.Add(1)
	go m.prober()
	for _, j := range m.order {
		if !j.terminal() {
			m.enqueue(j)
		}
	}
	return m, nil
}

// replay rebuilds the job table: snapshot first (the folded state of
// every record up to its BaseSeq), then the journal tail applied in
// order, later states overriding earlier ones. A non-accepted record
// for an unknown job means the journal lost the accepted record — in a
// checksummed journal that is a corrupt (or corrupt-skipped) record,
// so it is itself skipped and counted rather than failing the whole
// replay: one bad sector must not strand thousands of healthy jobs.
func (m *Manager) replay(info replayInfo) error {
	if info.snap != nil {
		for _, sj := range info.snap.Jobs {
			j := &jobRec{
				id: sj.ID, state: sj.State, spec: sj.Spec, attempt: sj.Attempt,
				lastErr: sj.Error, lastCode: sj.Code, cached: sj.Cached,
				proofFile: sj.ProofFile, proofBytes: sj.ProofBytes, stats: sj.Stats,
				done: make(chan struct{}),
			}
			if sj.TerminalAt != "" {
				if t, err := time.Parse(time.RFC3339Nano, sj.TerminalAt); err == nil {
					j.terminalAt = t
				}
			}
			m.byID[j.id] = j
			m.order = append(m.order, j)
		}
	}
	for _, r := range info.records {
		j := m.byID[r.Job]
		if j == nil {
			if r.State != recAccepted {
				m.corruptRecs++
				m.logf("nocap-jobs event=journal_orphan_record seq=%d job=%s state=%s", r.Seq, r.Job, r.State)
				continue
			}
			j = &jobRec{id: r.Job, done: make(chan struct{})}
			if r.Spec != nil {
				j.spec = *r.Spec
			}
			m.byID[r.Job] = j
			m.order = append(m.order, j)
		}
		switch r.State {
		case recAccepted:
			j.state = StateAccepted
			j.attempt = r.Attempt
		case recRunning:
			j.state = StateRunning
			j.attempt = r.Attempt
		case recRetrying:
			j.state = StateAccepted
			j.attempt = r.Attempt
			j.lastErr, j.lastCode = r.Error, r.Code
			m.retries++
		case recDone:
			j.state = StateDone
			j.attempt = r.Attempt
			j.proofFile = r.ProofFile
			j.proofBytes = r.ProofBytes
			j.stats = r.Stats
			j.cached = r.Cached
			j.lastErr, j.lastCode = "", ""
		case recFailed:
			j.state = StateFailed
			j.attempt = r.Attempt
			j.lastErr, j.lastCode = r.Error, r.Code
		case recCancelled:
			j.state = StateCancelled
			j.attempt = r.Attempt
			j.lastErr, j.lastCode = r.Error, r.Code
		default:
			// decodeRecord admits only known states; recProbe records are
			// dropped by parseJournal before they get here.
			return zkerr.Malformedf("jobs: journal seq %d: unknown state %q", r.Seq, r.State)
		}
		if j.state.Terminal() {
			if t, err := time.Parse(time.RFC3339Nano, r.T); err == nil {
				j.terminalAt = t
			}
		}
	}
	now := time.Now()
	for _, j := range m.order {
		m.accepted++
		if j.state == StateRunning {
			// The attempt was in flight at the crash: refund it so the
			// interruption does not consume retry budget, and mark the
			// job recovered for observability.
			if j.attempt > 0 {
				j.attempt--
			}
			j.state = StateAccepted
			j.recovered = true
			m.recovered++
		}
		switch j.state {
		case StateDone:
			m.doneCount++
		case StateFailed:
			m.failedCount++
		case StateCancelled:
			m.cancelCount++
		}
		if j.terminal() {
			if j.terminalAt.IsZero() {
				// Pre-v2 records carry no usable timestamp; date them now
				// so the retention clock still starts ticking.
				j.terminalAt = now
			}
			close(j.done)
		} else {
			m.active++
			m.activeTenant[j.spec.Tenant]++
		}
	}
	return nil
}

// sweepOrphanProofs deletes proof files no loaded job references: a
// crash between a compaction's snapshot rename and its proof-file GC
// (or between a proof persist and its journal record, when the job
// later resolved differently) strands them. Runs once at Open, before
// workers start, so no attempt can be writing proofs concurrently.
func (m *Manager) sweepOrphanProofs() int64 {
	referenced := make(map[string]struct{}, len(m.byID))
	for _, j := range m.byID {
		if j.proofFile != "" {
			referenced[filepath.Base(j.proofFile)] = struct{}{}
		}
	}
	dir := filepath.Join(m.cfg.Dir, proofsDirName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := referenced[e.Name()]; ok {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			n++
		}
	}
	if n > 0 {
		m.logf("nocap-jobs event=orphan_proofs_swept count=%d", n)
	}
	return n
}

// logf emits one structured operator log line.
func (m *Manager) logf(format string, args ...any) {
	m.cfg.Logf(format, args...)
}

// appendLocked journals one record through the degraded-mode state
// machine: every disk failure feeds the consecutive-failure streak,
// every success resets it (and exits degraded mode if entered). Caller
// holds m.mu.
func (m *Manager) appendLocked(r record) error {
	err := m.journal.append(r)
	if err != nil {
		m.journalErrs++
		m.noteDiskFailureLocked("journal.append", err)
		return err
	}
	m.noteDiskSuccessLocked()
	return nil
}

// noteDiskFailureLocked records one failed disk write; at
// DegradedThreshold consecutive failures the manager enters degraded
// mode. Caller holds m.mu.
func (m *Manager) noteDiskFailureLocked(op string, err error) {
	m.diskFails++
	if !m.degraded && m.diskFails >= int64(m.cfg.DegradedThreshold) {
		m.degraded = true
		m.degradedSince = time.Now()
		m.degradedEntries++
		m.logf("nocap-jobs event=degraded_enter trigger=%s consecutive_failures=%d err=%q", op, m.diskFails, err)
	}
}

// noteDiskSuccessLocked records one successful disk write, resetting
// the failure streak and exiting degraded mode. Caller holds m.mu.
func (m *Manager) noteDiskSuccessLocked() {
	m.diskFails = 0
	if m.degraded {
		m.degraded = false
		m.logf("nocap-jobs event=degraded_exit duration=%s", time.Since(m.degradedSince).Round(time.Millisecond))
	}
}

// Degraded reports whether the manager is refusing new jobs over disk
// failures, and for how long it has been.
func (m *Manager) Degraded() (bool, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.degraded {
		return false, 0
	}
	return true, time.Since(m.degradedSince)
}

// prober is the degraded-mode recovery loop: while degraded, append a
// no-op probe record through the real journal path every ProbeInterval;
// the first success flips the manager back to healthy (inside
// appendLocked). Replay skips probe records, so they cost one journal
// line until the next compaction.
func (m *Manager) prober() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-tick.C:
			m.mu.Lock()
			if m.degraded && !m.closing {
				m.probeWrites++
				_ = m.appendLocked(record{Job: probeJobID, State: recProbe})
			}
			m.mu.Unlock()
		}
	}
}

// newID returns a fresh job identifier.
func newID() string {
	var b [9]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Submit accepts a job, journaling (and fsyncing) its accepted record
// before returning the id: an acknowledged job survives any crash. It
// sheds with ErrBreakerOpen while the breaker is open and ErrQueueFull
// when MaxPending non-terminal jobs already exist.
func (m *Manager) Submit(spec Spec) (string, error) {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.degraded {
		m.mu.Unlock()
		return "", ErrDegraded
	}
	if ok, _ := m.breaker.AllowSubmit(); !ok {
		m.mu.Unlock()
		return "", ErrBreakerOpen
	}
	if m.active >= int64(m.cfg.MaxPending) {
		m.mu.Unlock()
		return "", ErrQueueFull
	}
	if m.cfg.TenantLimit != nil {
		if lim := m.cfg.TenantLimit(spec.Tenant); lim > 0 && m.activeTenant[spec.Tenant] >= int64(lim) {
			m.mu.Unlock()
			return "", ErrTenantQuota
		}
	}
	j := &jobRec{id: newID(), spec: spec, state: StateAccepted, done: make(chan struct{})}
	if err := m.appendLocked(record{Job: j.id, State: recAccepted, Spec: &j.spec}); err != nil {
		m.mu.Unlock()
		return "", err
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	m.active++
	m.activeTenant[spec.Tenant]++
	m.accepted++
	m.mu.Unlock()
	m.enqueue(j)
	return j.id, nil
}

// Get returns a job's current snapshot.
func (m *Manager) Get(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.byID[id]
	if j == nil {
		return JobInfo{}, ErrUnknownJob
	}
	return j.info(m.cfg.MaxAttempts), nil
}

// List returns snapshots of every known job in submission order.
func (m *Manager) List() []JobInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobInfo, 0, len(m.order))
	for _, j := range m.order {
		out = append(out, j.info(m.cfg.MaxAttempts))
	}
	return out
}

// Proof returns the persisted proof bytes of a done job.
func (m *Manager) Proof(id string) ([]byte, error) {
	m.mu.Lock()
	j := m.byID[id]
	if j == nil {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	if j.state != StateDone {
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: job %s is %s, not done", id, j.state)
	}
	path := j.proofFile
	m.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, zkerr.Internalf("jobs: read proof for %s: %v", id, err)
	}
	return data, nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (JobInfo, error) {
	m.mu.Lock()
	j := m.byID[id]
	m.mu.Unlock()
	if j == nil {
		return JobInfo{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return m.Get(id)
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// Cancel requests cancellation and returns the job's snapshot after
// the request took effect. It is idempotent: a queued job terminalizes
// immediately, a running job has its attempt context cancelled (it
// terminalizes when the attempt unwinds — unless the proof had already
// completed, in which case done wins; cancellation is best-effort, not
// retroactive), and repeating a cancel — against an already-cancelled
// job or one with a cancel still in flight — succeeds with the current
// snapshot. Only a job that reached done or failed FIRST answers
// ErrTerminal: the caller's cancel lost the race to a different outcome,
// which is information, not noise.
func (m *Manager) Cancel(id string) (JobInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.byID[id]
	if j == nil {
		return JobInfo{}, ErrUnknownJob
	}
	if j.state == StateCancelled {
		return j.info(m.cfg.MaxAttempts), nil
	}
	if j.terminal() {
		return j.info(m.cfg.MaxAttempts), ErrTerminal
	}
	j.cancelRequested = true
	if j.state == StateRunning {
		if j.cancel != nil {
			j.cancel()
		}
		return j.info(m.cfg.MaxAttempts), nil
	}
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	m.terminalizeLocked(j, StateCancelled, "cancelled before execution", "")
	return j.info(m.cfg.MaxAttempts), nil
}

// ActiveByTenant snapshots the live (non-terminal) job count per
// tenant, as restored by replay and maintained since.
func (m *Manager) ActiveByTenant() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.activeTenant))
	for id, n := range m.activeTenant {
		if n > 0 {
			out[id] = n
		}
	}
	return out
}

// BreakerState returns the breaker's current state and, when open, the
// remaining cooldown (for Retry-After hints).
func (m *Manager) BreakerState() (BreakerState, time.Duration) {
	if ok, remaining := m.breaker.AllowSubmit(); !ok {
		return BreakerOpen, remaining
	}
	return m.breaker.State(), 0
}

// Metrics returns a consistent counter snapshot.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Accepted:            m.accepted,
		Done:                m.doneCount,
		Failed:              m.failedCount,
		Cancelled:           m.cancelCount,
		Retries:             m.retries,
		Active:              m.active,
		RecoveredJobs:       m.recovered,
		TornRecords:         m.torn,
		JournalRecords:      m.journal.records,
		JournalBytes:        m.journal.bytes,
		JournalAppendErrors: m.journalErrs,
		JournalLostJobs:     m.journalLost,
		BreakerState:        m.breaker.State(),
		BreakerTrips:        m.breaker.Trips(),
		CorruptRecords:      m.corruptRecs,
		Compactions:         m.compactions,
		SnapshotBytes:       m.snapshotBytes,
		RetiredJobs:         m.retired,
		OrphansSwept:        m.orphansSwept,
		Degraded:            m.degraded,
		DegradedEntries:     m.degradedEntries,
		DiskFailStreak:      m.diskFails,
		ProbeWrites:         m.probeWrites,
		Batches:             m.batchCount,
		BatchJobs:           m.batchJobs,
		LastBatchSize:       m.lastBatchSize,
		BatchAmortizedSaves: m.batchSaves,
		LeaseReassigns:      m.leaseReassigns,
	}
}

// Close shuts the Manager down: no new submissions, pending retry
// timers stopped, running attempts cancelled, dispatchers drained, the
// journal closed. Attempts interrupted by Close are NOT journaled as
// terminal — their last journal record stays "running"/"accepted", so
// the next Open re-enqueues them; that is the crash-equivalence that
// makes kill -9 and graceful shutdown recover identically.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	for _, j := range m.order {
		if j.timer != nil {
			j.timer.Stop()
			j.timer = nil
		}
	}
	m.mu.Unlock()

	m.cancelBase()
	close(m.quit)
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var waitErr error
	select {
	case <-drained:
	case <-ctx.Done():
		waitErr = ctx.Err()
	}
	m.mu.Lock()
	err := m.journal.close()
	m.mu.Unlock()
	if waitErr != nil {
		return waitErr
	}
	return err
}

// enqueue places a job on the ready channel, deferring briefly if the
// channel is momentarily full.
func (m *Manager) enqueue(j *jobRec) {
	m.mu.Lock()
	if m.closing || j.terminal() {
		m.mu.Unlock()
		return
	}
	j.timer = nil
	m.mu.Unlock()
	select {
	case m.ready <- j:
	default:
		t := time.AfterFunc(25*time.Millisecond, func() { m.enqueue(j) })
		m.mu.Lock()
		if m.closing || j.terminal() {
			t.Stop()
		} else {
			j.timer = t
		}
		m.mu.Unlock()
	}
}

// requeueAfter re-enqueues a job after d (breaker-denied dispatch).
func (m *Manager) requeueAfter(j *jobRec, d time.Duration) {
	m.mu.Lock()
	if m.closing || j.terminal() {
		m.mu.Unlock()
		return
	}
	j.timer = time.AfterFunc(d, func() { m.enqueue(j) })
	m.mu.Unlock()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	if m.batches != nil {
		// Batching on: the batcher goroutine owns ready; workers consume
		// coalesced batches.
		for {
			select {
			case <-m.quit:
				return
			case b := <-m.batches:
				m.dispatchBatch(b)
			}
		}
	}
	for {
		select {
		case <-m.quit:
			return
		case j := <-m.ready:
			m.dispatch(j)
		}
	}
}

// batcher sits between the ready channel and the workers when batching
// is enabled (DESIGN.md §15). It groups ready jobs by (tenant, batch
// key); a group flushes to the workers when it reaches BatchMax or when
// BatchWindow has elapsed since its first member arrived, whichever is
// sooner. Unbatchable jobs (BatchKey ok=false) flush immediately as
// singletons. Tenant is part of the group key, so a batch never mixes
// tenants and fairness/quota accounting stays per-tenant.
func (m *Manager) batcher() {
	defer m.wg.Done()
	type group struct {
		jobs     []*jobRec
		deadline time.Time
	}
	pending := make(map[string]*group)
	var order []string // group keys in arrival order, for deterministic flushing
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	timerSet := false

	emit := func(jobs []*jobRec) bool {
		select {
		case m.batches <- jobs:
			return true
		case <-m.quit:
			// Dropped batches stay journaled as accepted/retrying; the
			// next Open re-enqueues them (crash equivalence).
			return false
		}
	}
	flush := func(gk string) bool {
		g := pending[gk]
		delete(pending, gk)
		for i, k := range order {
			if k == gk {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		return emit(g.jobs)
	}
	rearm := func() {
		if timerSet {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerSet = false
		}
		var earliest time.Time
		for _, k := range order {
			if g := pending[k]; earliest.IsZero() || g.deadline.Before(earliest) {
				earliest = g.deadline
			}
		}
		if !earliest.IsZero() {
			d := time.Until(earliest)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			timerSet = true
		}
	}

	for {
		select {
		case <-m.quit:
			return
		case j := <-m.ready:
			key, ok := m.cfg.BatchKey(j.spec)
			if !ok {
				if !emit([]*jobRec{j}) {
					return
				}
				continue
			}
			gk := j.spec.Tenant + "\x00" + key
			g := pending[gk]
			if g == nil {
				g = &group{deadline: time.Now().Add(m.cfg.BatchWindow)}
				pending[gk] = g
				order = append(order, gk)
			}
			g.jobs = append(g.jobs, j)
			if len(g.jobs) >= m.cfg.BatchMax {
				if !flush(gk) {
					return
				}
			}
			rearm()
		case <-timer.C:
			timerSet = false
			now := time.Now()
			for _, k := range append([]string(nil), order...) {
				if g := pending[k]; g != nil && !g.deadline.After(now) {
					if !flush(k) {
						return
					}
				}
			}
			rearm()
		}
	}
}

func (m *Manager) dispatch(j *jobRec) {
	ok, probe := m.breaker.AllowAttempt()
	if !ok {
		m.requeueAfter(j, m.breakerRetryDelay())
		return
	}
	m.dispatchGranted(j, probe)
}

// breakerRetryDelay is how long a breaker-denied dispatch waits before
// re-enqueueing: a quarter of the cooldown, clamped to [10ms, 500ms].
func (m *Manager) breakerRetryDelay() time.Duration {
	d := m.cfg.BreakerCooldown / 4
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d
}

// dispatchGranted routes one breaker-granted solo attempt through the
// external pool gate (GateN with cost 1 when set, else Gate) or runs it
// directly.
func (m *Manager) dispatchGranted(j *jobRec, probe bool) {
	run := func() { m.runAttempt(j, probe) }
	var err error
	switch {
	case m.cfg.GateN != nil:
		err = m.cfg.GateN(m.baseCtx, j.spec.Tenant, 1, run)
	case m.cfg.Gate != nil:
		err = m.cfg.Gate(m.baseCtx, j.spec.Tenant, run)
	default:
		run()
		return
	}
	if err != nil {
		// The external pool shed us without running the attempt: no
		// budget consumed, the probe slot (if held) goes back, try
		// again shortly.
		if probe {
			m.breaker.abandonProbe()
		}
		m.requeueAfter(j, 50*time.Millisecond)
	}
}

// dispatchBatch dispatches one coalesced batch. Singletons take the
// solo path (Exec, per-attempt breaker grant) unchanged. A real batch
// takes one breaker grant for the whole attempt; a half-open probe must
// be a single attempt, so the first member probes solo and the rest
// requeue. The gate is charged the full batch size via GateN so DRR
// fairness sees k jobs, not one.
func (m *Manager) dispatchBatch(batch []*jobRec) {
	if len(batch) == 1 {
		m.dispatch(batch[0])
		return
	}
	ok, probe := m.breaker.AllowAttempt()
	if !ok {
		d := m.breakerRetryDelay()
		for _, j := range batch {
			m.requeueAfter(j, d)
		}
		return
	}
	if probe {
		m.dispatchGranted(batch[0], true)
		for _, j := range batch[1:] {
			m.requeueAfter(j, 50*time.Millisecond)
		}
		return
	}
	run := func() { m.runBatch(batch) }
	var err error
	switch {
	case m.cfg.GateN != nil:
		err = m.cfg.GateN(m.baseCtx, batch[0].spec.Tenant, len(batch), run)
	case m.cfg.Gate != nil:
		err = m.cfg.Gate(m.baseCtx, batch[0].spec.Tenant, run)
	default:
		run()
		return
	}
	if err != nil {
		for _, j := range batch {
			m.requeueAfter(j, 50*time.Millisecond)
		}
	}
}

// runAttempt executes one attempt: journal running (fsync'd), run Exec
// under panic containment, then classify the outcome. probe says the
// breaker grant holds the half-open probe slot; every exit must either
// reach a Success/Failure verdict or abandon the probe.
func (m *Manager) runAttempt(j *jobRec, probe bool) {
	m.mu.Lock()
	if m.closing || j.terminal() || j.state == StateRunning {
		m.mu.Unlock()
		if probe {
			m.breaker.abandonProbe()
		}
		return
	}
	j.attempt++
	if err := m.appendLocked(record{Job: j.id, State: recRunning, Attempt: j.attempt}); err != nil {
		m.mu.Unlock()
		m.finishAttempt(j, Result{}, err, probe)
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	j.state = StateRunning
	if j.cancelRequested {
		cancel() // Cancel raced the dispatch; make the attempt a no-op.
	}
	m.mu.Unlock()
	res, err := m.exec(ctx, j.spec)
	cancel()
	m.finishAttempt(j, res, err, probe)
}

// exec is the panic-containment boundary around the caller's Exec.
func (m *Manager) exec(ctx context.Context, spec Spec) (res Result, err error) {
	defer zkerr.RecoverTo(&err, "jobs: attempt")
	if ferr := faultinject.Check(fiAttemptExec); ferr != nil {
		return Result{}, ferr
	}
	return m.cfg.Exec(ctx, spec)
}

// runBatch executes one batched attempt: journal every live member
// running (fsync'd) under one lock hold, give each member its own
// cancellable context, run BatchExec once, then classify every member's
// outcome exactly like a solo attempt. A member that is already
// terminal or running is silently dropped (its state owner wins); a
// member whose running record cannot be journaled finishes with that
// error while its batch-mates proceed.
func (m *Manager) runBatch(batch []*jobRec) {
	type prepped struct {
		j      *jobRec
		ctx    context.Context
		cancel context.CancelFunc
	}
	var live []prepped
	var journalFailed []*jobRec
	var journalErr error
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return
	}
	for _, j := range batch {
		if j.terminal() || j.state == StateRunning {
			continue
		}
		j.attempt++
		if err := m.appendLocked(record{Job: j.id, State: recRunning, Attempt: j.attempt}); err != nil {
			journalFailed = append(journalFailed, j)
			journalErr = err
			continue
		}
		ctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		j.state = StateRunning
		if j.cancelRequested {
			cancel() // Cancel raced the dispatch; make this member a no-op.
		}
		live = append(live, prepped{j, ctx, cancel})
	}
	m.mu.Unlock()
	for _, j := range journalFailed {
		m.finishAttempt(j, Result{}, journalErr, false)
	}

	// Per-member fault injection: a chaos-failed member finishes with
	// the injected error without ever reaching BatchExec, and its
	// batch-mates proceed without it.
	run := make([]prepped, 0, len(live))
	for _, p := range live {
		if ferr := faultinject.Check(fiBatchExec); ferr != nil {
			p.cancel()
			m.finishAttempt(p.j, Result{}, ferr, false)
			continue
		}
		run = append(run, p)
	}
	if len(run) == 0 {
		return
	}

	members := make([]BatchMember, len(run))
	for i, p := range run {
		members[i] = BatchMember{ID: p.j.id, Spec: p.j.spec, Ctx: p.ctx}
	}
	m.mu.Lock()
	m.batchCount++
	m.batchJobs += int64(len(run))
	m.lastBatchSize = int64(len(run))
	if len(run) > 1 {
		m.batchSaves += int64(len(run) - 1)
	}
	m.mu.Unlock()

	outs := m.execBatch(members)
	for i, p := range run {
		p.cancel()
		m.finishAttempt(p.j, outs[i].Result, outs[i].Err, false)
	}
}

// execBatch is the panic-containment boundary around the caller's
// BatchExec; it guarantees exactly one outcome per member, turning a
// panic or a miscounted return into a per-member internal error.
func (m *Manager) execBatch(members []BatchMember) []BatchOutcome {
	outs, err := func() (outs []BatchOutcome, err error) {
		defer zkerr.RecoverTo(&err, "jobs: batch attempt")
		return m.cfg.BatchExec(m.baseCtx, members), nil
	}()
	if err == nil && len(outs) != len(members) {
		err = zkerr.Internalf("jobs: BatchExec returned %d outcomes for %d members", len(outs), len(members))
	}
	if err != nil {
		outs = make([]BatchOutcome, len(members))
		for i := range outs {
			outs[i] = BatchOutcome{Err: err}
		}
	}
	return outs
}

// finishAttempt classifies an attempt's outcome and journals the
// resulting transition. The proof file is written (atomically) before
// the done record, so a done record always points at a complete proof.
// probe, when true, is released by whichever breaker verdict
// (Success/Failure) this attempt reaches, or abandoned on the paths
// that reach neither.
func (m *Manager) finishAttempt(j *jobRec, res Result, err error, probe bool) {
	var proofFile string
	var persistErr error
	if err == nil {
		proofFile = filepath.Join(m.cfg.Dir, proofsDirName, j.id+".bin")
		if werr := writeFileAtomic(proofFile, res.Proof, 0o644, fiProofPersist); werr != nil {
			persistErr = werr
			err = zkerr.Internalf("jobs: persist proof for %s: %v", j.id, werr)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if persistErr != nil {
		// A failed proof persist is a disk failure like any other; feed
		// the degraded-mode streak.
		m.noteDiskFailureLocked("proof.persist", persistErr)
	}
	if j.terminal() {
		if probe {
			m.breaker.abandonProbe()
		}
		return
	}
	j.cancel = nil

	if m.closing && err != nil && errors.Is(err, context.Canceled) && !j.cancelRequested {
		// Shutdown interrupted the attempt: refund it and leave the
		// journal untouched so the next Open re-enqueues from the
		// running record, exactly as after a crash.
		j.attempt--
		j.state = StateAccepted
		if probe {
			m.breaker.abandonProbe()
		}
		return
	}

	if err != nil && errors.Is(err, ErrLeaseLost) && !j.cancelRequested {
		// A worker node died (or partitioned) holding this attempt's
		// lease: the prover never reached a verdict, so the attempt is
		// refunded — journaled as a retry at the decremented attempt
		// number so a crash mid-reassignment replays to the same
		// refunded state — and the job re-enqueues after a short
		// jittered delay for another node to steal. The breaker sees
		// nothing: node death is the cluster's failure, not proving's.
		j.attempt--
		j.state = StateAccepted
		j.lastErr, j.lastCode = err.Error(), "lease-lost"
		m.retries++
		m.leaseReassigns++
		_ = m.appendLocked(record{
			Job: j.id, State: recRetrying, Attempt: j.attempt,
			Error: err.Error(), Code: "lease-lost",
		})
		if probe {
			m.breaker.abandonProbe()
		}
		if m.closing {
			return
		}
		j.timer = time.AfterFunc(m.backoffFor(1), func() { m.enqueue(j) })
		return
	}

	if err == nil {
		m.breaker.Success()
		j.proofFile = proofFile
		j.proofBytes = len(res.Proof)
		j.stats = res.Stats
		j.cached = res.Cached
		j.lastErr, j.lastCode = "", ""
		m.appendTerminalLocked(j, record{
			Job: j.id, State: recDone, Attempt: j.attempt,
			ProofFile: proofFile, ProofBytes: j.proofBytes, Stats: res.Stats, Cached: res.Cached,
		})
		m.markTerminalLocked(j, StateDone)
		return
	}

	code := zkerr.Code(err)
	m.breaker.Failure(code == "internal")

	if j.cancelRequested || errors.Is(err, context.Canceled) {
		m.terminalizeLocked(j, StateCancelled, err.Error(), code)
		return
	}
	if zkerr.Retryable(err) && j.attempt < m.cfg.MaxAttempts {
		backoff := m.backoffFor(j.attempt)
		j.state = StateAccepted
		j.lastErr, j.lastCode = err.Error(), code
		m.retries++
		_ = m.appendLocked(record{
			Job: j.id, State: recRetrying, Attempt: j.attempt,
			Error: err.Error(), Code: code, BackoffMS: backoff.Milliseconds(),
		})
		if m.closing {
			return
		}
		j.timer = time.AfterFunc(backoff, func() { m.enqueue(j) })
		return
	}
	m.terminalizeLocked(j, StateFailed, err.Error(), code)
}

// terminalizeLocked journals and applies a terminal failure-side
// transition. Caller holds m.mu.
func (m *Manager) terminalizeLocked(j *jobRec, st State, msg, code string) {
	j.lastErr, j.lastCode = msg, code
	rs := recFailed
	if st == StateCancelled {
		rs = recCancelled
	}
	m.appendTerminalLocked(j, record{Job: j.id, State: rs, Attempt: j.attempt, Error: msg, Code: code})
	m.markTerminalLocked(j, st)
}

// appendTerminalLocked journals a terminal record, retrying once so a
// transient fsync hiccup cannot split the durable and in-memory views.
// If both tries fail the job is marked journalLost: its terminal state
// is observable now but not journaled, so a restart will replay it from
// its previous record and re-run it — a done job re-proves (benign, the
// proof file is rewritten atomically), but a failed/cancelled job can
// resurrect with a different outcome. GET surfaces journal_lost so
// clients and operators can see exactly which jobs carry that hazard,
// and the journal-lost counter makes a dying data disk alertable.
// Caller holds m.mu.
func (m *Manager) appendTerminalLocked(j *jobRec, r record) {
	err := m.appendLocked(r)
	if err != nil {
		err = m.appendLocked(r)
	}
	if err != nil {
		j.journalLost = true
		m.journalLost++
	}
}

// markTerminalLocked applies the in-memory side of a terminal
// transition exactly once. Caller holds m.mu and has already journaled.
func (m *Manager) markTerminalLocked(j *jobRec, st State) {
	j.state = st
	j.terminalAt = time.Now()
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	m.active--
	if m.activeTenant[j.spec.Tenant] > 0 {
		m.activeTenant[j.spec.Tenant]--
	}
	switch st {
	case StateDone:
		m.doneCount++
	case StateFailed:
		m.failedCount++
	case StateCancelled:
		m.cancelCount++
	}
	close(j.done)
}

// backoffFor returns the full-jitter backoff after the given number of
// attempts: uniform in (0, min(BackoffMax, BackoffBase·2^(attempt-1))].
func (m *Manager) backoffFor(attempt int) time.Duration {
	d := m.cfg.BackoffBase
	for i := 1; i < attempt && d < m.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > m.cfg.BackoffMax {
		d = m.cfg.BackoffMax
	}
	m.randMu.Lock()
	f := m.rand.Float64()
	m.randMu.Unlock()
	b := time.Duration(float64(d) * f)
	if b <= 0 {
		b = time.Millisecond
	}
	return b
}
