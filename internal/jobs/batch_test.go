package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
)

// batchTestConfig extends testConfig with batching: every job with the
// same tenant coalesces (the key is the payload's first byte class —
// here constant), a generous window so fast submits always land in one
// group, and the given BatchExec.
func batchTestConfig(t *testing.T, exec Exec, batchExec BatchExec) Config {
	t.Helper()
	cfg := testConfig(t, exec)
	cfg.BatchKey = func(spec Spec) (string, bool) { return "k", true }
	cfg.BatchExec = batchExec
	cfg.BatchWindow = 500 * time.Millisecond
	cfg.BatchMax = 4
	return cfg
}

// proveAll is a BatchExec that succeeds every member that is not
// cancelled, with a proof naming the member.
func proveAll(ctx context.Context, members []BatchMember) []BatchOutcome {
	outs := make([]BatchOutcome, len(members))
	for i, mb := range members {
		if err := mb.Ctx.Err(); err != nil {
			outs[i] = BatchOutcome{Err: err}
			continue
		}
		outs[i] = BatchOutcome{Result: Result{Proof: []byte("batch-proof-" + mb.ID)}}
	}
	return outs
}

// TestBatchCoalescesAndProves: jobs with the same (tenant, key)
// submitted within the window run as one batched attempt; every member
// terminalizes done with its own proof and journal chain, and the batch
// metrics account for the coalescing.
func TestBatchCoalescesAndProves(t *testing.T) {
	snap := leakcheck.Take()
	var execCalls, batchCalls sync.Map
	cfg := batchTestConfig(t,
		func(ctx context.Context, spec Spec) (Result, error) {
			execCalls.Store(string(spec.Payload), true)
			return Result{Proof: []byte("solo")}, nil
		},
		func(ctx context.Context, members []BatchMember) []BatchOutcome {
			batchCalls.Store(len(members), true)
			return proveAll(ctx, members)
		})
	m := openManager(t, cfg)

	ids := make([]string, 4)
	for i := range ids {
		id, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		info := waitTerminal(t, m, id)
		if info.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done", id, info.State, info.Error)
		}
		if info.Attempts != 1 {
			t.Fatalf("job %s attempts %d, want 1", id, info.Attempts)
		}
		proof, err := m.Proof(id)
		if err != nil {
			t.Fatalf("Proof(%s): %v", id, err)
		}
		if string(proof) != "batch-proof-"+id {
			t.Fatalf("job %s proof %q, want its own batch proof", id, proof)
		}
	}
	execCalls.Range(func(k, v any) bool {
		t.Errorf("solo Exec ran for payload %v; all four jobs should have batched", k)
		return true
	})
	mm := m.Metrics()
	if mm.Batches != 1 || mm.BatchJobs != 4 || mm.LastBatchSize != 4 {
		t.Errorf("batch metrics Batches=%d BatchJobs=%d LastBatchSize=%d, want 1/4/4",
			mm.Batches, mm.BatchJobs, mm.LastBatchSize)
	}
	if mm.BatchAmortizedSaves != 3 {
		t.Errorf("BatchAmortizedSaves=%d, want 3 (size-1 for one batch of 4)", mm.BatchAmortizedSaves)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	snap.Check(t)
}

// TestBatchUnbatchableAndSingletonUseSoloPath: jobs whose BatchKey says
// no, and groups that close with a single member, run through the solo
// Exec path — BatchExec never sees a batch of one.
func TestBatchUnbatchableAndSingletonUseSoloPath(t *testing.T) {
	var mu sync.Mutex
	var soloRan int
	batchSizes := []int{}
	cfg := batchTestConfig(t,
		func(ctx context.Context, spec Spec) (Result, error) {
			mu.Lock()
			soloRan++
			mu.Unlock()
			return Result{Proof: []byte("solo")}, nil
		},
		func(ctx context.Context, members []BatchMember) []BatchOutcome {
			mu.Lock()
			batchSizes = append(batchSizes, len(members))
			mu.Unlock()
			return proveAll(ctx, members)
		})
	cfg.BatchWindow = 10 * time.Millisecond
	cfg.BatchKey = func(spec Spec) (string, bool) {
		return string(spec.Payload), string(spec.Payload) != `"nobatch"`
	}
	m := openManager(t, cfg)

	// Unbatchable: dispatches solo immediately.
	id1, err := m.Submit(Spec{Payload: json.RawMessage(`"nobatch"`)})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitTerminal(t, m, id1); info.State != StateDone {
		t.Fatalf("unbatchable job state %s, want done", info.State)
	}
	// Batchable but alone: the group times out with one member and runs
	// solo.
	id2, err := m.Submit(Spec{Payload: json.RawMessage(`"alone"`)})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitTerminal(t, m, id2); info.State != StateDone {
		t.Fatalf("singleton job state %s, want done", info.State)
	}

	mu.Lock()
	defer mu.Unlock()
	if soloRan != 2 {
		t.Errorf("solo Exec ran %d times, want 2", soloRan)
	}
	if len(batchSizes) != 0 {
		t.Errorf("BatchExec ran with sizes %v, want never", batchSizes)
	}
	if mm := m.Metrics(); mm.Batches != 0 {
		t.Errorf("Batches=%d, want 0", mm.Batches)
	}
}

// TestBatchMemberCancelIsolated: cancelling one member of a running
// batch terminalizes that member as cancelled without disturbing its
// batch-mates, which finish done with their own proofs.
func TestBatchMemberCancelIsolated(t *testing.T) {
	snap := leakcheck.Take()
	started := make(chan []string, 1)
	release := make(chan struct{})
	cfg := batchTestConfig(t,
		func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: []byte("solo")}, nil
		},
		func(ctx context.Context, members []BatchMember) []BatchOutcome {
			ids := make([]string, len(members))
			for i, mb := range members {
				ids[i] = mb.ID
			}
			started <- ids
			<-release
			return proveAll(ctx, members)
		})
	m := openManager(t, cfg)

	ids := make([]string, 4)
	for i := range ids {
		id, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = id
	}
	batchIDs := <-started
	if len(batchIDs) != 4 {
		t.Fatalf("batch of %d members, want 4", len(batchIDs))
	}
	victim := batchIDs[1]
	if _, err := m.Cancel(victim); err != nil {
		t.Fatalf("Cancel(%s): %v", victim, err)
	}
	close(release)

	for _, id := range ids {
		info := waitTerminal(t, m, id)
		if id == victim {
			if info.State != StateCancelled {
				t.Errorf("victim %s state %s, want cancelled", id, info.State)
			}
			continue
		}
		if info.State != StateDone {
			t.Errorf("batch-mate %s state %s (err %q), want done despite victim's cancel", id, info.State, info.Error)
		}
	}
	assertExactlyOneTerminal(t, cfg.Dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	snap.Check(t)
}

// TestChaosBatchMemberInjection: the jobs.batch.exec point fires once
// per member in batch order, so Trigger selects the Nth member. The
// injected member fails its attempt before reaching BatchExec, retries,
// and succeeds solo; its batch-mates prove in the same batched attempt,
// untouched. The faultinject registry is process-global, so no
// t.Parallel.
func TestChaosBatchMemberInjection(t *testing.T) {
	snap := leakcheck.Take()
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{Point: "jobs.batch.exec", Kind: faultinject.Error, Trigger: 2})
	cfg := batchTestConfig(t,
		func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: []byte("solo-retry")}, nil
		},
		proveAll)
	m := openManager(t, cfg)

	ids := make([]string, 4)
	for i := range ids {
		id, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = id
	}
	victims, mates := 0, 0
	for _, id := range ids {
		info := waitTerminal(t, m, id)
		if info.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done", id, info.State, info.Error)
		}
		switch info.Attempts {
		case 1:
			mates++
		case 2:
			victims++
		default:
			t.Errorf("job %s took %d attempts, want 1 or 2", id, info.Attempts)
		}
	}
	if victims != 1 || mates != 3 {
		t.Errorf("%d injected members and %d clean batch-mates, want 1 and 3", victims, mates)
	}
	if !faultinject.Fired() {
		t.Fatal("armed batch fault never fired")
	}
	assertExactlyOneTerminal(t, cfg.Dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	snap.Check(t)
}

// TestBatchExecPanicAndMiscountContained: a BatchExec that panics or
// returns the wrong number of outcomes costs every member one attempt
// (an internal, retryable error) and nothing else — the retry proves
// them all.
func TestBatchExecPanicAndMiscountContained(t *testing.T) {
	for _, mode := range []string{"panic", "miscount"} {
		t.Run(mode, func(t *testing.T) {
			var mu sync.Mutex
			calls := 0
			cfg := batchTestConfig(t,
				func(ctx context.Context, spec Spec) (Result, error) {
					return Result{Proof: []byte("solo")}, nil
				},
				func(ctx context.Context, members []BatchMember) []BatchOutcome {
					mu.Lock()
					calls++
					first := calls == 1
					mu.Unlock()
					if first {
						if mode == "panic" {
							panic("injected batch panic")
						}
						return nil // miscount: 0 outcomes for len(members) members
					}
					return proveAll(ctx, members)
				})
			m := openManager(t, cfg)
			ids := make([]string, 3)
			for i := range ids {
				id, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))})
				if err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
				ids[i] = id
			}
			for _, id := range ids {
				info := waitTerminal(t, m, id)
				if info.State != StateDone {
					t.Fatalf("job %s state %s (err %q), want done after contained %s", id, info.State, info.Error, mode)
				}
				if info.Attempts != 2 {
					t.Errorf("job %s attempts %d, want 2 (failed batch, clean retry)", id, info.Attempts)
				}
			}
			assertExactlyOneTerminal(t, cfg.Dir)
		})
	}
}

// TestGateNChargesBatchCost: with GateN set, a coalesced batch is
// charged its full size so external DRR fairness accounting sees k
// jobs, not one cheap slot.
func TestGateNChargesBatchCost(t *testing.T) {
	var mu sync.Mutex
	type charge struct {
		tenant string
		cost   int
	}
	var charges []charge
	cfg := batchTestConfig(t,
		func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: []byte("solo")}, nil
		},
		proveAll)
	cfg.GateN = func(ctx context.Context, tenantID string, cost int, run func()) error {
		mu.Lock()
		charges = append(charges, charge{tenantID, cost})
		mu.Unlock()
		run()
		return nil
	}
	m := openManager(t, cfg)

	ids := make([]string, 4)
	for i := range ids {
		id, err := m.Submit(Spec{Tenant: "acme", Payload: json.RawMessage(fmt.Sprintf("%d", i))})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if info := waitTerminal(t, m, id); info.State != StateDone {
			t.Fatalf("job %s state %s, want done", id, info.State)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(charges) != 1 || charges[0] != (charge{"acme", 4}) {
		t.Errorf("gate charges %v, want exactly one charge of cost 4 for acme", charges)
	}
}

// TestBatchNeverMixesTenants: same batch key, different tenants — the
// planner must keep them in separate batches so fairness and quota
// accounting stay per-tenant.
func TestBatchNeverMixesTenants(t *testing.T) {
	var mu sync.Mutex
	batches := [][]string{} // tenant of each member, per batch
	cfg := batchTestConfig(t,
		func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: []byte("solo")}, nil
		},
		func(ctx context.Context, members []BatchMember) []BatchOutcome {
			tenants := make([]string, len(members))
			for i, mb := range members {
				tenants[i] = mb.Spec.Tenant
			}
			mu.Lock()
			batches = append(batches, tenants)
			mu.Unlock()
			return proveAll(ctx, members)
		})
	cfg.BatchMax = 2
	m := openManager(t, cfg)

	var ids []string
	for _, tenant := range []string{"a", "b", "a", "b"} {
		id, err := m.Submit(Spec{Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if info := waitTerminal(t, m, id); info.State != StateDone {
			t.Fatalf("job %s state %s, want done", id, info.State)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tenants := range batches {
		for _, tn := range tenants[1:] {
			if tn != tenants[0] {
				t.Errorf("batch mixes tenants %v", tenants)
			}
		}
	}
}

// The batched hard-kill crash test mirrors TestCrashKillAndRecover: the
// child coalesces four jobs into one batch, journals every member
// running, and stalls inside BatchExec until the parent SIGKILLs it.
// Recovery must replay every member to exactly one terminal state with
// the interrupted attempt refunded — a batch crash is indistinguishable
// from four solo crashes.

const (
	batchCrashChildEnv = "NOCAP_JOBS_BATCH_CRASH_CHILD"
	batchCrashDirEnv   = "NOCAP_JOBS_BATCH_CRASH_DIR"
)

// TestBatchCrashChildProcess is only meaningful as a re-exec target; it
// skips itself in a normal test run.
func TestBatchCrashChildProcess(t *testing.T) {
	if os.Getenv(batchCrashChildEnv) != "1" {
		t.Skip("crash-test child (driven by TestBatchCrashKillAndRecover)")
	}
	dir := os.Getenv(batchCrashDirEnv)
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
		// The batch announces each member with a marker file, then stalls
		// until the parent kills the process.
		BatchKey: func(spec Spec) (string, bool) { return "k", true },
		BatchExec: func(ctx context.Context, members []BatchMember) []BatchOutcome {
			for _, mb := range members {
				f, err := os.CreateTemp(dir, "batch-marker-*")
				if err == nil {
					f.Close()
				}
				_ = mb
			}
			<-members[0].Ctx.Done()
			outs := make([]BatchOutcome, len(members))
			for i := range outs {
				outs[i] = BatchOutcome{Err: members[i].Ctx.Err()}
			}
			return outs
		},
		BatchWindow: 100 * time.Millisecond,
		BatchMax:    4,
		Workers:     2,
		MaxPending:  16,
	})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))}); err != nil {
			t.Fatalf("child Submit %d: %v", i, err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "submitted"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Minute) // the parent's SIGKILL ends this
}

func TestBatchCrashKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	snap := leakcheck.Take()

	child := exec.Command(os.Args[0], "-test.run=^TestBatchCrashChildProcess$", "-test.v")
	child.Env = append(os.Environ(), batchCrashChildEnv+"=1", batchCrashDirEnv+"="+dir)
	if err := child.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	reaped := false
	defer func() {
		if !reaped {
			child.Process.Kill()
			child.Wait()
		}
	}()

	// Kill only after every member of the batch is journaled running and
	// mid-flight inside BatchExec.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, subErr := os.Stat(filepath.Join(dir, "submitted"))
		markers, _ := filepath.Glob(filepath.Join(dir, "batch-marker-*"))
		if subErr == nil && len(markers) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never reached the kill window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatalf("kill child: %v", err)
	}
	child.Wait()
	reaped = true

	accepted := map[string]bool{}
	for _, r := range journalRecords(t, dir) {
		switch r.State {
		case recAccepted:
			accepted[r.Job] = true
		case recDone, recFailed, recCancelled:
			t.Fatalf("terminal record %+v journaled before the kill", r)
		}
	}
	if len(accepted) != 4 {
		t.Fatalf("%d accepted jobs survived the kill, want 4", len(accepted))
	}

	// Recovery: reopen with a working batched pipeline; the re-enqueued
	// members coalesce again and prove.
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: append([]byte("solo-"), spec.Payload...)}, nil
		},
		BatchKey:    func(spec Spec) (string, bool) { return "k", true },
		BatchExec:   proveAll,
		BatchWindow: 50 * time.Millisecond,
		BatchMax:    4,
		Workers:     2,
		MaxPending:  16,
	})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	}()

	if mm := m.Metrics(); mm.RecoveredJobs == 0 {
		t.Fatal("no job was recovered from a mid-batch crash")
	}
	for id := range accepted {
		info := waitTerminal(t, m, id)
		if info.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done after batch crash recovery", id, info.State, info.Error)
		}
		// The crash-interrupted batched attempt is refunded, exactly like
		// a solo crash.
		if info.Attempts != 1 {
			t.Fatalf("job %s attempts %d, want 1", id, info.Attempts)
		}
		if proof, err := m.Proof(id); err != nil || len(proof) == 0 {
			t.Fatalf("Proof(%s): %q, %v", id, proof, err)
		}
	}
	assertExactlyOneTerminal(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	snap.Check(t)
}
