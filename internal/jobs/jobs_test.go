package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// testConfig returns a Config tuned for fast tests: short backoffs,
// deterministic jitter, the given Exec.
func testConfig(t *testing.T, exec Exec) Config {
	t.Helper()
	return Config{
		Dir:              t.TempDir(),
		Exec:             exec,
		Workers:          2,
		MaxPending:       16,
		MaxAttempts:      4,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       10 * time.Millisecond,
		BreakerThreshold: 100, // effectively disabled unless a test lowers it
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             1,
	}
}

// openManager opens a Manager and registers a closing cleanup.
func openManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// waitState polls until the job reaches a terminal state and returns it.
func waitTerminal(t *testing.T, m *Manager, id string) JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	info, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return info
}

// journalRecords reads and decodes the journal in dir.
func journalRecords(t *testing.T, dir string) []record {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	var info replayInfo
	if _, err := parseJournal(data, 0, &info); err != nil {
		t.Fatalf("parse journal: %v", err)
	}
	return info.records
}

// assertExactlyOneTerminal verifies the core durability invariant on
// the journal: every accepted job has exactly one terminal record.
func assertExactlyOneTerminal(t *testing.T, dir string) {
	t.Helper()
	terminals := map[string]int{}
	accepted := map[string]bool{}
	for _, r := range journalRecords(t, dir) {
		switch r.State {
		case recAccepted:
			accepted[r.Job] = true
		case recDone, recFailed, recCancelled:
			terminals[r.Job]++
		}
	}
	for id := range accepted {
		if n := terminals[id]; n != 1 {
			t.Errorf("job %s has %d terminal records, want exactly 1", id, n)
		}
	}
	for id := range terminals {
		if !accepted[id] {
			t.Errorf("job %s has a terminal record but no accepted record", id)
		}
	}
}

func TestLifecycleSubmitToDone(t *testing.T) {
	snap := leakcheck.Take()
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("proof:" + string(spec.Payload)), Stats: json.RawMessage(`{"wall_ms":1}`)}, nil
	})
	m := openManager(t, cfg)

	id, err := m.Submit(Spec{Payload: json.RawMessage(`"hello"`)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state %s (err %q), want done", info.State, info.Error)
	}
	if info.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", info.Attempts)
	}
	if string(info.Stats) != `{"wall_ms":1}` {
		t.Fatalf("stats %s", info.Stats)
	}
	proof, err := m.Proof(id)
	if err != nil {
		t.Fatalf("Proof: %v", err)
	}
	if string(proof) != `proof:"hello"` {
		t.Fatalf("proof %q", proof)
	}
	if info.ProofBytes != len(proof) {
		t.Fatalf("proof_bytes %d, want %d", info.ProofBytes, len(proof))
	}

	// The journal must show the full transition chain, fsync'd in order.
	var states []recState
	for _, r := range journalRecords(t, cfg.Dir) {
		states = append(states, r.State)
	}
	want := []recState{recAccepted, recRunning, recDone}
	if len(states) != len(want) {
		t.Fatalf("journal states %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("journal states %v, want %v", states, want)
		}
	}
	assertExactlyOneTerminal(t, cfg.Dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Close(ctx)
	snap.Check(t)
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		if calls.Add(1) == 1 {
			return Result{}, zkerr.Internalf("transient backend fault")
		}
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state %s (err %q), want done after retry", info.State, info.Error)
	}
	if info.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (one retry)", info.Attempts)
	}
	mm := m.Metrics()
	if mm.Retries != 1 {
		t.Fatalf("metrics retries %d, want 1", mm.Retries)
	}
	// The retry must be journaled with its classification and backoff.
	var sawRetry bool
	for _, r := range journalRecords(t, cfg.Dir) {
		if r.State == recRetrying {
			sawRetry = true
			if r.Code != "internal" {
				t.Errorf("retrying record code %q, want internal", r.Code)
			}
			if r.BackoffMS < 0 {
				t.Errorf("retrying record backoff %d", r.BackoffMS)
			}
		}
	}
	if !sawRetry {
		t.Fatal("no retrying record journaled")
	}
}

func TestPanicRecoveredAndRetried(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		if calls.Add(1) == 1 {
			panic("prover invariant violated")
		}
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	info := waitTerminal(t, m, id)
	if info.State != StateDone || info.Attempts != 2 {
		t.Fatalf("state %s attempts %d (err %q), want done after panic retry", info.State, info.Attempts, info.Error)
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		calls.Add(1)
		return Result{}, zkerr.Malformedf("bad witness bytes")
	})
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	info := waitTerminal(t, m, id)
	if info.State != StateFailed {
		t.Fatalf("state %s, want failed", info.State)
	}
	if info.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("attempts %d calls %d, want 1/1 (permanent failures are never retried)", info.Attempts, calls.Load())
	}
	if info.Code != "malformed-proof" {
		t.Fatalf("code %q, want malformed-proof", info.Code)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
}

func TestAttemptBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		calls.Add(1)
		return Result{}, zkerr.Internalf("always broken")
	})
	cfg.MaxAttempts = 3
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	info := waitTerminal(t, m, id)
	if info.State != StateFailed {
		t.Fatalf("state %s, want failed after budget", info.State)
	}
	if info.Attempts != 3 || calls.Load() != 3 {
		t.Fatalf("attempts %d calls %d, want 3/3", info.Attempts, calls.Load())
	}
	if info.Code != "internal" {
		t.Fatalf("code %q", info.Code)
	}
	if mm := m.Metrics(); mm.Retries != 2 {
		t.Fatalf("retries %d, want 2", mm.Retries)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		select {
		case <-block:
			return Result{Proof: []byte("ok")}, nil
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
	})
	cfg.Workers = 1
	m := openManager(t, cfg)
	first, _ := m.Submit(Spec{})
	second, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit second: %v", err)
	}
	// Give the single worker time to pick up the first job, then cancel
	// the queued second one: it must terminalize without ever running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info, _ := m.Get(first); info.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(second); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	info := waitTerminal(t, m, second)
	if info.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", info.State)
	}
	if info.Attempts != 0 {
		t.Fatalf("cancelled queued job ran %d attempts", info.Attempts)
	}
	// Cancelling an already-cancelled job is idempotent: same terminal
	// info, no error, no second journal record.
	again, err := m.Cancel(second)
	if err != nil {
		t.Fatalf("Cancel cancelled job: %v, want idempotent success", err)
	}
	if again.State != StateCancelled {
		t.Fatalf("re-cancel state %s, want cancelled", again.State)
	}
	close(block)
	if info := waitTerminal(t, m, first); info.State != StateDone {
		t.Fatalf("first job %s, want done", info.State)
	}
	// A job that reached done/failed first is genuinely terminal: cancel
	// is a typed conflict, not a silent no-op.
	if _, err := m.Cancel(first); !errors.Is(err, ErrTerminal) {
		t.Fatalf("Cancel done job: %v, want ErrTerminal", err)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		close(started)
		<-ctx.Done()
		return Result{}, ctx.Err()
	})
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	if _, err := m.Cancel(id); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateCancelled {
		t.Fatalf("state %s (err %q), want cancelled", info.State, info.Error)
	}
	// Cancellation is permanent: exactly one attempt, no retry of the
	// context.Canceled failure.
	if info.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", info.Attempts)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
}

func TestCancelUnknownJob(t *testing.T) {
	m := openManager(t, testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	}))
	if _, err := m.Cancel("j-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel unknown: %v, want ErrUnknownJob", err)
	}
	if _, err := m.Get("j-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Get unknown: %v, want ErrUnknownJob", err)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return Result{}, ctx.Err()
	})
	cfg.MaxPending = 2
	m := openManager(t, cfg)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Spec{}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit(Spec{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over MaxPending: %v, want ErrQueueFull", err)
	}
}

func TestBreakerTripsShedsAndRecovers(t *testing.T) {
	var clock atomic.Int64 // nanoseconds added to the base time
	base := time.Unix(1700000000, 0)
	var failing atomic.Bool
	failing.Store(true)
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		if failing.Load() {
			return Result{}, zkerr.Internalf("backend down")
		}
		return Result{Proof: []byte("ok")}, nil
	})
	cfg.MaxAttempts = 1 // fail fast; the breaker, not retry, is under test
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // only the fake clock can reopen it
	cfg.Now = func() time.Time { return base.Add(time.Duration(clock.Load())) }
	m := openManager(t, cfg)

	for i := 0; i < 2; i++ {
		id, err := m.Submit(Spec{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if info := waitTerminal(t, m, id); info.State != StateFailed {
			t.Fatalf("job %d state %s, want failed", i, info.State)
		}
	}
	st, retryAfter := m.BreakerState()
	if st != BreakerOpen {
		t.Fatalf("breaker %s after %d consecutive internal failures, want open", st, cfg.BreakerThreshold)
	}
	if retryAfter <= 0 {
		t.Fatalf("retry-after %v, want positive", retryAfter)
	}
	if _, err := m.Submit(Spec{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Submit while open: %v, want ErrBreakerOpen", err)
	}
	if mm := m.Metrics(); mm.BreakerTrips != 1 {
		t.Fatalf("breaker trips %d, want 1", mm.BreakerTrips)
	}

	// Cooldown elapses: half-open admits a probe; its success closes.
	clock.Store(int64(2 * time.Hour))
	if st, _ := m.BreakerState(); st != BreakerHalfOpen {
		t.Fatalf("breaker %s after cooldown, want half-open", st)
	}
	failing.Store(false)
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit in half-open: %v", err)
	}
	if info := waitTerminal(t, m, id); info.State != StateDone {
		t.Fatalf("probe job %s, want done", info.State)
	}
	if st, _ := m.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b := newBreaker(2, time.Minute, nil)
	b.Failure(true)
	b.Failure(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s, want open", b.State())
	}
	// Force half-open by rewinding openedAt instead of sleeping.
	b.mu.Lock()
	b.openedAt = b.openedAt.Add(-2 * time.Minute)
	b.mu.Unlock()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	ok, probe := b.AllowAttempt()
	if !ok || !probe {
		t.Fatalf("half-open AllowAttempt = (%v, %v), want granted probe", ok, probe)
	}
	if ok, _ := b.AllowAttempt(); ok {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	b.Failure(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after failed probe, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips %d, want 2", b.Trips())
	}
}

// TestBreakerAbandonedProbeReleasesSlot pins the fix for the half-open
// wedge: a granted probe that never runs (the gate shed it, or the job
// turned out to be terminal) must return its slot, or AllowAttempt
// refuses every attempt forever while submissions keep being accepted.
func TestBreakerAbandonedProbeReleasesSlot(t *testing.T) {
	b := newBreaker(1, time.Minute, nil)
	b.Failure(true)
	b.mu.Lock()
	b.openedAt = b.openedAt.Add(-2 * time.Minute)
	b.mu.Unlock()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	ok, probe := b.AllowAttempt()
	if !ok || !probe {
		t.Fatalf("AllowAttempt = (%v, %v), want granted probe", ok, probe)
	}
	if ok, _ := b.AllowAttempt(); ok {
		t.Fatal("second probe admitted while the first is outstanding")
	}
	b.abandonProbe()
	ok, probe = b.AllowAttempt()
	if !ok || !probe {
		t.Fatalf("AllowAttempt after abandon = (%v, %v), want the slot back", ok, probe)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after successful probe, want closed", b.State())
	}
	// In closed state attempts are granted without holding the probe, so
	// abandoning them must be a no-op for admission.
	if ok, probe := b.AllowAttempt(); !ok || probe {
		t.Fatalf("closed AllowAttempt = (%v, %v), want granted non-probe", ok, probe)
	}
}

// TestHalfOpenProbeShedByGateDoesNotWedge is the manager-level wedge
// regression: with the breaker half-open, the gate sheds the granted
// probe attempt (external pool full). The probe slot must come back so
// a later dispatch can run the probe — before the fix, probing stayed
// true forever and every job stalled until restart while submissions
// kept being accepted.
func TestHalfOpenProbeShedByGateDoesNotWedge(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var shed atomic.Int64
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		if failing.Load() {
			return Result{}, zkerr.Internalf("backend down")
		}
		return Result{Proof: []byte("ok")}, nil
	})
	cfg.Workers = 1
	cfg.MaxAttempts = 50
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = 40 * time.Millisecond
	cfg.Gate = func(ctx context.Context, tenantID string, run func()) error {
		if shed.Add(-1) >= 0 {
			return errors.New("external pool full")
		}
		run()
		return nil
	}
	m := openManager(t, cfg)
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for the first (internal) failure to trip the breaker. While
	// it is open no gate calls happen, so the next gate call after we
	// arm the shed is exactly the half-open probe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.BreakerState(); st != BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	failing.Store(false)
	shed.Store(1) // shed exactly the probe attempt
	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state %s (err %q), want done after the shed probe is re-dispatched", info.State, info.Error)
	}
	if st, _ := m.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
}

func TestBreakerIgnoresClientFailures(t *testing.T) {
	b := newBreaker(2, time.Minute, nil)
	for i := 0; i < 10; i++ {
		b.Failure(false) // malformed inputs say nothing about backend health
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after client-only failures, want closed", b.State())
	}
	b.Failure(true)
	b.Success()
	b.Failure(true)
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
}

func TestSubmitAfterCloseRefused(t *testing.T) {
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	})
	m := openManager(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := m.Submit(Spec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestShutdownRevertsRunningAndRecoveryResumes is the same-process
// half of the crash story: a job interrupted by Close keeps its journal
// state at "running", and a new Manager over the same directory
// re-enqueues it (attempt refunded, recovered flagged) and completes it.
func TestShutdownRevertsRunningAndRecoveryResumes(t *testing.T) {
	snap := leakcheck.Take()
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	blockCfg := Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
		Workers: 1, MaxPending: 8, MaxAttempts: 4,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond, Seed: 7,
	}
	m1, err := Open(blockCfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	runningID, err := m1.Submit(Spec{Payload: json.RawMessage(`1`)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	queuedID, err := m1.Submit(Spec{Payload: json.RawMessage(`2`)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cancel()
	snap.Check(t) // Close left nothing behind

	// The journal must NOT contain terminal records: shutdown is
	// crash-equivalent for in-flight work.
	for _, r := range journalRecords(t, dir) {
		if r.State == recDone || r.State == recFailed || r.State == recCancelled {
			t.Fatalf("journal has terminal record %+v after shutdown", r)
		}
	}

	// Reopen with a succeeding Exec: both jobs must complete.
	m2Cfg := blockCfg
	m2Cfg.Exec = func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: append([]byte("p"), spec.Payload...)}, nil
	}
	m2, err := Open(m2Cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	if mm := m2.Metrics(); mm.RecoveredJobs != 1 {
		t.Fatalf("recovered jobs %d, want 1 (the interrupted one)", mm.RecoveredJobs)
	}
	for _, id := range []string{runningID, queuedID} {
		info := waitTerminal(t, m2, id)
		if info.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done after recovery", id, info.State, info.Error)
		}
		// The interrupted attempt was refunded: one successful attempt each.
		if info.Attempts != 1 {
			t.Fatalf("job %s attempts %d, want 1", id, info.Attempts)
		}
	}
	info, _ := m2.Get(runningID)
	if !info.Recovered {
		t.Fatal("interrupted job not flagged recovered")
	}
	assertExactlyOneTerminal(t, dir)
}

func TestGateRoutesAttempts(t *testing.T) {
	var gated atomic.Int64
	pool := make(chan func(), 8)
	poolDone := make(chan struct{})
	go func() {
		defer close(poolDone)
		for run := range pool {
			run()
		}
	}()
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	cfg.Gate = func(ctx context.Context, tenantID string, run func()) error {
		gated.Add(1)
		done := make(chan struct{})
		select {
		case pool <- func() { run(); close(done) }:
		case <-ctx.Done():
			return ctx.Err()
		}
		<-done // Gate contract: run synchronously
		return nil
	}
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	if info := waitTerminal(t, m, id); info.State != StateDone {
		t.Fatalf("state %s, want done via gate", info.State)
	}
	if gated.Load() == 0 {
		t.Fatal("gate never invoked")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Close(ctx)
	close(pool)
	<-poolDone
}

func TestWaitHonoursContext(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return Result{}, ctx.Err()
	})
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait: %v, want DeadlineExceeded", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{Exec: func(context.Context, Spec) (Result, error) { return Result{}, nil }}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open without Exec succeeded")
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := m.Submit(Spec{})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	list := m.List()
	if len(list) != len(ids) {
		t.Fatalf("List len %d, want %d", len(list), len(ids))
	}
	for i, info := range list {
		if info.ID != ids[i] {
			t.Fatalf("List[%d] = %s, want %s", i, info.ID, ids[i])
		}
		if info.State != StateDone {
			t.Fatalf("List[%d] state %s", i, info.State)
		}
	}
}

func TestBackoffCappedExponentialFullJitter(t *testing.T) {
	cfg, err := Config{
		Dir:  t.TempDir(),
		Exec: func(context.Context, Spec) (Result, error) { return Result{}, nil },
		// 10ms base, 40ms cap.
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
		Seed:        42,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	m := &Manager{cfg: cfg, rand: rand.New(rand.NewSource(42))}
	caps := map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 40 * time.Millisecond, // capped
		9: 40 * time.Millisecond,
	}
	for attempt, ceil := range caps {
		for i := 0; i < 100; i++ {
			b := m.backoffFor(attempt)
			if b <= 0 || b > ceil {
				t.Fatalf("attempt %d backoff %v outside (0, %v]", attempt, b, ceil)
			}
		}
	}
}

// TestManyJobsMixedOutcomesJournalInvariant runs a mixed workload and
// checks the exactly-one-terminal invariant plus metric consistency.
func TestManyJobsMixedOutcomesJournalInvariant(t *testing.T) {
	snap := leakcheck.Take()
	var n atomic.Int64
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		switch n.Add(1) % 4 {
		case 0:
			return Result{}, zkerr.Malformedf("permanent")
		case 1:
			return Result{}, zkerr.Internalf("flaky")
		default:
			return Result{Proof: []byte("ok")}, nil
		}
	})
	cfg.MaxAttempts = 3
	cfg.MaxPending = 64
	m := openManager(t, cfg)
	var ids []string
	for i := 0; i < 24; i++ {
		id, err := m.Submit(Spec{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
	mm := m.Metrics()
	if mm.Done+mm.Failed+mm.Cancelled != int64(len(ids)) {
		t.Fatalf("terminal counts %d+%d+%d != %d", mm.Done, mm.Failed, mm.Cancelled, len(ids))
	}
	if mm.Active != 0 {
		t.Fatalf("active %d after all terminal", mm.Active)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Close(ctx)
	snap.Check(t)
}

// TestTerminalJournalAppendRetriedOnce: a single transient append
// failure on a terminal record is absorbed by the in-place retry — the
// journal still ends with the done record and the job is not split
// between its durable and in-memory views.
func TestTerminalJournalAppendRetriedOnce(t *testing.T) {
	defer faultinject.Disarm()
	// Hits for one clean job: accepted=1, running=2, done=3.
	faultinject.MustArm(faultinject.Plan{Point: "jobs.journal.append", Kind: faultinject.Error, Trigger: 3})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state %s (err %q), want done", info.State, info.Error)
	}
	if info.JournalLost {
		t.Fatal("job flagged journal_lost although the retry succeeded")
	}
	mm := m.Metrics()
	if mm.JournalAppendErrors != 1 || mm.JournalLostJobs != 0 {
		t.Fatalf("append errors %d / lost %d, want 1 / 0", mm.JournalAppendErrors, mm.JournalLostJobs)
	}
	if !faultinject.Fired() {
		t.Fatal("injected append failure never fired")
	}
	assertExactlyOneTerminal(t, cfg.Dir)
}

// TestTerminalJournalLostSurfaced: when the terminal append fails
// persistently (a data disk that stopped accepting writes), the job
// still terminalizes in memory — but it is flagged journal_lost and
// counted, so the contradiction between the observable outcome and
// what a restart will replay is visible instead of silent.
func TestTerminalJournalLostSurfaced(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		<-release
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Wait for the attempt to be journaled as running, then kill the
	// journal fd out from under the manager: every later append fails.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if info, _ := m.Get(id); info.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	m.mu.Lock()
	m.journal.f.Close()
	m.mu.Unlock()
	close(release)

	info := waitTerminal(t, m, id)
	if info.State != StateDone {
		t.Fatalf("state %s (err %q), want done", info.State, info.Error)
	}
	if !info.JournalLost {
		t.Fatal("terminal state without a durable record not flagged journal_lost")
	}
	mm := m.Metrics()
	if mm.JournalLostJobs != 1 {
		t.Fatalf("journal-lost jobs %d, want 1", mm.JournalLostJobs)
	}
	if mm.JournalAppendErrors < 2 {
		t.Fatalf("append errors %d, want both tries counted", mm.JournalAppendErrors)
	}
	// The durable journal must still parse and must NOT contain a
	// terminal record: after a restart this job replays from "running",
	// which is exactly what journal_lost warns about.
	for _, r := range journalRecords(t, cfg.Dir) {
		if r.State == recDone || r.State == recFailed || r.State == recCancelled {
			t.Fatalf("journal unexpectedly holds terminal record %+v", r)
		}
	}
}

// TestProofFileNamedInDoneRecord pins the durability ordering: the done
// record references a proof file that exists and is complete.
func TestProofFileNamedInDoneRecord(t *testing.T) {
	payload := []byte(strings.Repeat("zk", 1024))
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: payload}, nil
	})
	m := openManager(t, cfg)
	id, _ := m.Submit(Spec{})
	waitTerminal(t, m, id)
	for _, r := range journalRecords(t, cfg.Dir) {
		if r.State != recDone {
			continue
		}
		data, err := os.ReadFile(r.ProofFile)
		if err != nil {
			t.Fatalf("done record proof file: %v", err)
		}
		if len(data) != r.ProofBytes || len(data) != len(payload) {
			t.Fatalf("proof file %d bytes, record says %d, want %d", len(data), r.ProofBytes, len(payload))
		}
		return
	}
	t.Fatal("no done record in journal")
}
