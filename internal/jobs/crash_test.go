package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// The hard-kill crash test re-execs the test binary as a child process
// that opens a Manager, submits jobs, and stalls mid-attempt; the
// parent SIGKILLs it — no deferred cleanup, no journal close, the real
// thing — then reopens the same data directory and proves every
// accepted job still reaches exactly one terminal state.

const (
	crashChildEnv = "NOCAP_JOBS_CRASH_CHILD"
	crashDirEnv   = "NOCAP_JOBS_CRASH_DIR"
)

// TestCrashChildProcess is only meaningful as a re-exec target; it
// skips itself in a normal test run.
func TestCrashChildProcess(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-test child (driven by TestCrashKillAndRecover)")
	}
	dir := os.Getenv(crashDirEnv)
	m, err := Open(Config{
		Dir: dir,
		// Attempts announce themselves with a marker file, then stall
		// until the parent kills the process.
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			f, err := os.CreateTemp(dir, "attempt-marker-*")
			if err == nil {
				f.Close()
			}
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
		Workers:    2,
		MaxPending: 16,
	})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))}); err != nil {
			t.Fatalf("child Submit %d: %v", i, err)
		}
	}
	// Signal the parent that all submissions are durably journaled.
	if err := os.WriteFile(filepath.Join(dir, "submitted"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Minute) // the parent's SIGKILL ends this
}

func TestCrashKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	snap := leakcheck.Take()

	child := exec.Command(os.Args[0], "-test.run=^TestCrashChildProcess$", "-test.v")
	child.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	if err := child.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	reaped := false
	defer func() {
		if !reaped {
			child.Process.Kill()
			child.Wait()
		}
	}()

	// Wait until the child has durably accepted its jobs AND at least
	// one attempt is mid-flight, so the kill lands in the worst window.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, subErr := os.Stat(filepath.Join(dir, "submitted"))
		markers, _ := filepath.Glob(filepath.Join(dir, "attempt-marker-*"))
		if subErr == nil && len(markers) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never reached the kill window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatalf("kill child: %v", err)
	}
	child.Wait()
	reaped = true

	// The journal must contain accepted records for all 4 jobs and no
	// terminal records: the child died with everything in flight.
	accepted := map[string]bool{}
	for _, r := range journalRecords(t, dir) {
		switch r.State {
		case recAccepted:
			accepted[r.Job] = true
		case recDone, recFailed, recCancelled:
			t.Fatalf("terminal record %+v journaled before the kill", r)
		}
	}
	if len(accepted) != 4 {
		t.Fatalf("%d accepted jobs survived the kill, want 4", len(accepted))
	}

	// Recovery: reopen the same directory with a working Exec.
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: append([]byte("proof-"), spec.Payload...)}, nil
		},
		Workers:    2,
		MaxPending: 16,
	})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	}()

	mm := m.Metrics()
	if mm.RecoveredJobs == 0 {
		t.Fatal("no job was recovered from a mid-attempt crash")
	}
	for id := range accepted {
		info := waitTerminal(t, m, id)
		if info.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done after crash recovery", id, info.State, info.Error)
		}
		// The crash-interrupted attempt is refunded: one clean attempt.
		if info.Attempts != 1 {
			t.Fatalf("job %s attempts %d, want 1", id, info.Attempts)
		}
		proof, err := m.Proof(id)
		if err != nil {
			t.Fatalf("Proof(%s): %v", id, err)
		}
		if len(proof) == 0 {
			t.Fatalf("job %s has empty proof", id)
		}
	}
	assertExactlyOneTerminal(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	snap.Check(t)
}

// TestChaosAttemptExecInjection drives the retry machinery through the
// jobs-layer faultinject point with both error and panic kinds: the
// armed fault fires exactly once, so attempt 1 fails, attempt 2
// succeeds, and nothing leaks. The faultinject registry is process
// global, so no t.Parallel here.
func TestChaosAttemptExecInjection(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.Error, faultinject.Panic} {
		t.Run(kind.String(), func(t *testing.T) {
			snap := leakcheck.Take()
			defer faultinject.Disarm()
			faultinject.MustArm(faultinject.Plan{
				Point:      "jobs.attempt.exec",
				Kind:       kind,
				PanicValue: "injected attempt panic",
			})
			cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
				return Result{Proof: []byte("ok")}, nil
			})
			m := openManager(t, cfg)
			id, err := m.Submit(Spec{})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			info := waitTerminal(t, m, id)
			if info.State != StateDone {
				t.Fatalf("state %s (err %q), want done after injected %s", info.State, info.Error, kind)
			}
			if info.Attempts != 2 {
				t.Fatalf("attempts %d, want 2 (fault fired once, retry succeeded)", info.Attempts)
			}
			if !faultinject.Fired() {
				t.Fatal("armed fault never fired")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			m.Close(ctx)
			cancel()
			snap.Check(t)
		})
	}
}

// TestChaosJournalAppendFailureOnSubmit: a failing data disk at submit
// time must refuse the job with a typed error and accept the next one
// once the disk recovers — no half-accepted ghosts.
func TestChaosJournalAppendFailureOnSubmit(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{Point: "jobs.journal.append", Kind: faultinject.Error})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	if _, err := m.Submit(Spec{}); zkerr.Code(err) != "internal" {
		t.Fatalf("Submit with failing journal: %v, want internal-class error", err)
	}
	if got := len(m.List()); got != 0 {
		t.Fatalf("%d jobs tracked after refused submit, want 0", got)
	}
	// The fault fired once; the disk is healthy again.
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	if info := waitTerminal(t, m, id); info.State != StateDone {
		t.Fatalf("state %s, want done", info.State)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
}

// TestChaosRecoveryDelayInjection pins that the jobs.recover.replay
// point sits on the Open path (the server's /readyz test leans on it).
func TestChaosRecoveryDelayInjection(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{
		Point: "jobs.recover.replay",
		Kind:  faultinject.Delay,
		Sleep: 50 * time.Millisecond,
	})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	})
	start := time.Now()
	m := openManager(t, cfg)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("Open returned in %v; the replay injection point is off the recovery path", d)
	}
	if !faultinject.Fired() {
		t.Fatal("replay fault never fired")
	}
	_ = m
}
