package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/leakcheck"
	"nocap/internal/zkerr"
)

// The hard-kill crash test re-execs the test binary as a child process
// that opens a Manager, submits jobs, and stalls mid-attempt; the
// parent SIGKILLs it — no deferred cleanup, no journal close, the real
// thing — then reopens the same data directory and proves every
// accepted job still reaches exactly one terminal state.

const (
	crashChildEnv = "NOCAP_JOBS_CRASH_CHILD"
	crashDirEnv   = "NOCAP_JOBS_CRASH_DIR"
)

// TestCrashChildProcess is only meaningful as a re-exec target; it
// skips itself in a normal test run.
func TestCrashChildProcess(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("crash-test child (driven by TestCrashKillAndRecover)")
	}
	dir := os.Getenv(crashDirEnv)
	m, err := Open(Config{
		Dir: dir,
		// Attempts announce themselves with a marker file, then stall
		// until the parent kills the process.
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			f, err := os.CreateTemp(dir, "attempt-marker-*")
			if err == nil {
				f.Close()
			}
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
		Workers:    2,
		MaxPending: 16,
	})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i))}); err != nil {
			t.Fatalf("child Submit %d: %v", i, err)
		}
	}
	// Signal the parent that all submissions are durably journaled.
	if err := os.WriteFile(filepath.Join(dir, "submitted"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Minute) // the parent's SIGKILL ends this
}

func TestCrashKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	snap := leakcheck.Take()

	child := exec.Command(os.Args[0], "-test.run=^TestCrashChildProcess$", "-test.v")
	child.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	if err := child.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	reaped := false
	defer func() {
		if !reaped {
			child.Process.Kill()
			child.Wait()
		}
	}()

	// Wait until the child has durably accepted its jobs AND at least
	// one attempt is mid-flight, so the kill lands in the worst window.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, subErr := os.Stat(filepath.Join(dir, "submitted"))
		markers, _ := filepath.Glob(filepath.Join(dir, "attempt-marker-*"))
		if subErr == nil && len(markers) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never reached the kill window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatalf("kill child: %v", err)
	}
	child.Wait()
	reaped = true

	// The journal must contain accepted records for all 4 jobs and no
	// terminal records: the child died with everything in flight.
	accepted := map[string]bool{}
	for _, r := range journalRecords(t, dir) {
		switch r.State {
		case recAccepted:
			accepted[r.Job] = true
		case recDone, recFailed, recCancelled:
			t.Fatalf("terminal record %+v journaled before the kill", r)
		}
	}
	if len(accepted) != 4 {
		t.Fatalf("%d accepted jobs survived the kill, want 4", len(accepted))
	}

	// Recovery: reopen the same directory with a working Exec.
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			return Result{Proof: append([]byte("proof-"), spec.Payload...)}, nil
		},
		Workers:    2,
		MaxPending: 16,
	})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	}()

	mm := m.Metrics()
	if mm.RecoveredJobs == 0 {
		t.Fatal("no job was recovered from a mid-attempt crash")
	}
	for id := range accepted {
		info := waitTerminal(t, m, id)
		if info.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done after crash recovery", id, info.State, info.Error)
		}
		// The crash-interrupted attempt is refunded: one clean attempt.
		if info.Attempts != 1 {
			t.Fatalf("job %s attempts %d, want 1", id, info.Attempts)
		}
		proof, err := m.Proof(id)
		if err != nil {
			t.Fatalf("Proof(%s): %v", id, err)
		}
		if len(proof) == 0 {
			t.Fatalf("job %s has empty proof", id)
		}
	}
	assertExactlyOneTerminal(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m.Close(ctx)
	cancel()
	snap.Check(t)
}

const (
	tenantCrashChildEnv = "NOCAP_JOBS_TENANT_CRASH_CHILD"
	tenantCrashDirEnv   = "NOCAP_JOBS_TENANT_CRASH_DIR"
)

// TestTenantCrashChildProcess is the re-exec target for
// TestCrashTenantAccountingRecovered: it journals jobs attributed to
// three tenants, parks them mid-attempt, and waits to be SIGKILLed.
func TestTenantCrashChildProcess(t *testing.T) {
	if os.Getenv(tenantCrashChildEnv) != "1" {
		t.Skip("crash-test child (driven by TestCrashTenantAccountingRecovered)")
	}
	dir := os.Getenv(tenantCrashDirEnv)
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			f, err := os.CreateTemp(dir, "attempt-marker-*")
			if err == nil {
				f.Close()
			}
			<-ctx.Done()
			return Result{}, ctx.Err()
		},
		Workers:    2,
		MaxPending: 16,
	})
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	// Two acme jobs, one beta, one anonymous — the mix the parent's
	// quota-accounting assertions are keyed to.
	for i, tenantID := range []string{"acme", "acme", "beta", ""} {
		if _, err := m.Submit(Spec{Payload: json.RawMessage(fmt.Sprintf("%d", i)), Tenant: tenantID}); err != nil {
			t.Fatalf("child Submit %d: %v", i, err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "submitted"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Minute) // the parent's SIGKILL ends this
}

// TestCrashTenantAccountingRecovered (DESIGN.md §12): tenant
// attribution and live-job quota accounting must survive a hard kill.
// The child journals jobs for three tenants and dies mid-attempt; the
// reopened manager must (a) restore each job's tenant, (b) rebuild the
// per-tenant live-job counts exactly, and (c) enforce TenantLimit
// against those recovered counts before any recovered job completes.
func TestCrashTenantAccountingRecovered(t *testing.T) {
	dir := t.TempDir()
	snap := leakcheck.Take()

	child := exec.Command(os.Args[0], "-test.run=^TestTenantCrashChildProcess$", "-test.v")
	child.Env = append(os.Environ(), tenantCrashChildEnv+"=1", tenantCrashDirEnv+"="+dir)
	if err := child.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	reaped := false
	defer func() {
		if !reaped {
			child.Process.Kill()
			child.Wait()
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, subErr := os.Stat(filepath.Join(dir, "submitted"))
		markers, _ := filepath.Glob(filepath.Join(dir, "attempt-marker-*"))
		if subErr == nil && len(markers) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never reached the kill window")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatalf("kill child: %v", err)
	}
	child.Wait()
	reaped = true

	// The accepted records must already carry the tenant attribution —
	// it rides inside the journaled Spec, not in memory.
	wantTenants := map[string]int64{"acme": 2, "beta": 1, "": 1}
	journaled := map[string]int64{}
	for _, r := range journalRecords(t, dir) {
		if r.State == recAccepted && r.Spec != nil {
			journaled[r.Spec.Tenant]++
		}
	}
	for id, want := range wantTenants {
		if journaled[id] != want {
			t.Fatalf("journal has %d accepted jobs for tenant %q, want %d (all: %v)",
				journaled[id], id, want, journaled)
		}
	}

	// Reopen with a gated Exec so the recovered live-job counts can be
	// observed before any job completes.
	release := make(chan struct{})
	m, err := Open(Config{
		Dir: dir,
		Exec: func(ctx context.Context, spec Spec) (Result, error) {
			select {
			case <-release:
				return Result{Proof: append([]byte("proof-"), spec.Payload...)}, nil
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		},
		Workers:    2,
		MaxPending: 16,
		TenantLimit: func(tenantID string) int {
			if tenantID == "acme" {
				return 2
			}
			return 0
		},
	})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	closed := false
	closeMgr := func() {
		if closed {
			return
		}
		closed = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	}
	defer closeMgr()

	// (b) Quota accounting restored exactly from the journal.
	active := m.ActiveByTenant()
	for id, want := range wantTenants {
		if active[id] != want {
			t.Fatalf("ActiveByTenant[%q] = %d after replay, want %d (all: %v)",
				id, active[id], want, active)
		}
	}
	// (c) The restored counts enforce quotas: acme is at its limit of 2
	// while its recovered jobs are still live.
	if _, err := m.Submit(Spec{Payload: json.RawMessage(`4`), Tenant: "acme"}); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("Submit over recovered acme quota: %v, want ErrTenantQuota", err)
	}
	if _, err := m.Submit(Spec{Payload: json.RawMessage(`5`), Tenant: "beta"}); err != nil {
		t.Fatalf("beta Submit blocked by acme's quota: %v", err)
	}

	close(release)
	// (a) Attribution restored on every recovered job, and the counts
	// drain to zero as jobs terminalize.
	byTenant := map[string]int{}
	for _, info := range m.List() {
		fin := waitTerminal(t, m, info.ID)
		if fin.State != StateDone {
			t.Fatalf("job %s state %s (err %q), want done", info.ID, fin.State, fin.Error)
		}
		byTenant[fin.Tenant]++
	}
	if byTenant["acme"] != 2 || byTenant["beta"] != 2 || byTenant[""] != 1 {
		t.Fatalf("terminal jobs by tenant %v, want acme:2 beta:2 anonymous:1", byTenant)
	}
	if left := m.ActiveByTenant(); len(left) != 0 {
		t.Fatalf("ActiveByTenant %v after all jobs terminal, want empty", left)
	}
	// The freed quota admits a new acme job.
	id, err := m.Submit(Spec{Payload: json.RawMessage(`6`), Tenant: "acme"})
	if err != nil {
		t.Fatalf("acme Submit after quota drained: %v", err)
	}
	if fin := waitTerminal(t, m, id); fin.State != StateDone || fin.Tenant != "acme" {
		t.Fatalf("post-recovery acme job: %+v", fin)
	}
	assertExactlyOneTerminal(t, dir)
	closeMgr()
	snap.Check(t)
}

// TestChaosAttemptExecInjection drives the retry machinery through the
// jobs-layer faultinject point with both error and panic kinds: the
// armed fault fires exactly once, so attempt 1 fails, attempt 2
// succeeds, and nothing leaks. The faultinject registry is process
// global, so no t.Parallel here.
func TestChaosAttemptExecInjection(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.Error, faultinject.Panic} {
		t.Run(kind.String(), func(t *testing.T) {
			snap := leakcheck.Take()
			defer faultinject.Disarm()
			faultinject.MustArm(faultinject.Plan{
				Point:      "jobs.attempt.exec",
				Kind:       kind,
				PanicValue: "injected attempt panic",
			})
			cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
				return Result{Proof: []byte("ok")}, nil
			})
			m := openManager(t, cfg)
			id, err := m.Submit(Spec{})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			info := waitTerminal(t, m, id)
			if info.State != StateDone {
				t.Fatalf("state %s (err %q), want done after injected %s", info.State, info.Error, kind)
			}
			if info.Attempts != 2 {
				t.Fatalf("attempts %d, want 2 (fault fired once, retry succeeded)", info.Attempts)
			}
			if !faultinject.Fired() {
				t.Fatal("armed fault never fired")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			m.Close(ctx)
			cancel()
			snap.Check(t)
		})
	}
}

// TestChaosJournalAppendFailureOnSubmit: a failing data disk at submit
// time must refuse the job with a typed error and accept the next one
// once the disk recovers — no half-accepted ghosts.
func TestChaosJournalAppendFailureOnSubmit(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{Point: "jobs.journal.append", Kind: faultinject.Error})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("ok")}, nil
	})
	m := openManager(t, cfg)
	if _, err := m.Submit(Spec{}); zkerr.Code(err) != "internal" {
		t.Fatalf("Submit with failing journal: %v, want internal-class error", err)
	}
	if got := len(m.List()); got != 0 {
		t.Fatalf("%d jobs tracked after refused submit, want 0", got)
	}
	// The fault fired once; the disk is healthy again.
	id, err := m.Submit(Spec{})
	if err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	if info := waitTerminal(t, m, id); info.State != StateDone {
		t.Fatalf("state %s, want done", info.State)
	}
	assertExactlyOneTerminal(t, cfg.Dir)
}

// TestChaosRecoveryDelayInjection pins that the jobs.recover.replay
// point sits on the Open path (the server's /readyz test leans on it).
func TestChaosRecoveryDelayInjection(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.MustArm(faultinject.Plan{
		Point: "jobs.recover.replay",
		Kind:  faultinject.Delay,
		Sleep: 50 * time.Millisecond,
	})
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	})
	start := time.Now()
	m := openManager(t, cfg)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("Open returned in %v; the replay injection point is off the recovery path", d)
	}
	if !faultinject.Fired() {
		t.Fatal("replay fault never fired")
	}
	_ = m
}
