package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// The journal is the durability backbone of the job layer: an
// append-only JSONL file in the manager's data directory where every
// state transition is written and fsync'd *before* the transition takes
// effect for callers. A submission is acknowledged only after its
// accepted record is on disk; a proof is reported done only after the
// proof file has been atomically renamed into place and the done record
// synced. Recovery is therefore a pure replay: the journal is the
// truth, the in-memory table a cache of its suffix state.
//
// Torn writes: a crash can stop the kernel mid-append, leaving a final
// record with no terminating newline (or a truncated JSON prefix).
// Replay tolerates exactly that — the damaged final record is dropped
// and the file truncated back to its last clean record, so the affected
// job resumes from its previous journaled state. Damage anywhere
// *before* the final record is not survivable tearing but corruption,
// and fails recovery loudly rather than guessing.

// journalName is the journal file's name inside the data directory.
const journalName = "journal.jsonl"

// proofsDirName is the subdirectory holding completed proof payloads.
const proofsDirName = "proofs"

// fiJournalAppend fires before every journal append; chaos tests use it
// to simulate a failing data disk.
var fiJournalAppend = faultinject.Register("jobs.journal.append")

// fiRecoverReplay fires once at the start of journal replay; readiness
// tests use a Delay plan here to hold the server in "recovering".
var fiRecoverReplay = faultinject.Register("jobs.recover.replay")

// recState is the journal-record state vocabulary. It is a superset of
// the public State set: "retrying" marks a failed attempt whose job went
// back to the queue with a backoff, which the public API reports as
// StateAccepted with a non-zero attempt count.
type recState string

const (
	recAccepted  recState = "accepted"
	recRunning   recState = "running"
	recRetrying  recState = "retrying"
	recDone      recState = "done"
	recFailed    recState = "failed"
	recCancelled recState = "cancelled"
)

// record is one journal line.
type record struct {
	Seq     uint64   `json:"seq"`
	Job     string   `json:"job"`
	State   recState `json:"state"`
	T       string   `json:"t,omitempty"`
	Spec    *Spec    `json:"spec,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	Error   string   `json:"error,omitempty"`
	Code    string   `json:"code,omitempty"`
	// BackoffMS records the scheduled retry delay (informational; after
	// a crash the job is re-enqueued immediately).
	BackoffMS  int64           `json:"backoff_ms,omitempty"`
	ProofFile  string          `json:"proof_file,omitempty"`
	ProofBytes int             `json:"proof_bytes,omitempty"`
	Stats      json.RawMessage `json:"stats,omitempty"`
	// Cached marks a done record whose proof came from the proof cache.
	Cached bool `json:"cached,omitempty"`
}

// journal is the open append handle plus its counters.
type journal struct {
	path    string
	f       *os.File
	seq     uint64
	records int64
	bytes   int64
}

// replayInfo summarizes what recovery found.
type replayInfo struct {
	records []record
	// torn is 1 if the final record was damaged and dropped.
	torn int64
}

// openJournal reads (replaying) and opens (for append) the journal in
// dir, creating the directory layout on first use.
func openJournal(dir string) (*journal, replayInfo, error) {
	if err := os.MkdirAll(filepath.Join(dir, proofsDirName), 0o755); err != nil {
		return nil, replayInfo{}, fmt.Errorf("jobs: create data dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	if err := faultinject.Check(fiRecoverReplay); err != nil {
		return nil, replayInfo{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, replayInfo{}, fmt.Errorf("jobs: read journal: %w", err)
	}
	info, cleanLen, err := parseJournal(data)
	if err != nil {
		return nil, replayInfo{}, err
	}
	if cleanLen < int64(len(data)) {
		// Drop the torn tail so the next append starts on a clean line.
		if err := os.Truncate(path, cleanLen); err != nil {
			return nil, replayInfo{}, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, replayInfo{}, fmt.Errorf("jobs: open journal: %w", err)
	}
	jl := &journal{path: path, f: f, records: int64(len(info.records)), bytes: cleanLen}
	for _, r := range info.records {
		if r.Seq > jl.seq {
			jl.seq = r.Seq
		}
	}
	// Make the directory entries (journal file, proofs dir) durable too.
	syncDir(dir)
	return jl, info, nil
}

// parseJournal decodes the journal bytes, tolerating a torn final
// record. It returns the decoded records and the byte length of the
// clean prefix (everything before the torn tail, if any).
func parseJournal(data []byte) (replayInfo, int64, error) {
	var info replayInfo
	offset := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated final line: a torn append. Drop it.
			info.torn++
			return info, offset, nil
		}
		line := data[:nl]
		rest := data[nl+1:]
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Job == "" || r.State == "" {
			if len(rest) == 0 {
				// Final record, terminated but undecodable: the newline
				// landed and the payload did not. Same treatment.
				info.torn++
				return info, offset, nil
			}
			return replayInfo{}, 0, zkerr.Malformedf(
				"jobs: journal corrupt at byte %d (mid-file record undecodable: %.80s)", offset, line)
		}
		info.records = append(info.records, r)
		offset += int64(nl + 1)
		data = rest
	}
	return info, offset, nil
}

// append writes one record and fsyncs it. The caller holds the manager
// lock, which serializes seq assignment and file writes.
func (jl *journal) append(r record) error {
	if err := faultinject.Check(fiJournalAppend); err != nil {
		return zkerr.Internalf("jobs: journal append: %v", err)
	}
	jl.seq++
	r.Seq = jl.seq
	r.T = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(r)
	if err != nil {
		return zkerr.Internalf("jobs: marshal journal record: %v", err)
	}
	line = append(line, '\n')
	if _, err := jl.f.Write(line); err != nil {
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal fsync: %w", err)
	}
	jl.records++
	jl.bytes += int64(len(line))
	return nil
}

func (jl *journal) close() error { return jl.f.Close() }

// syncDir fsyncs a directory so renames and creates inside it are
// durable; errors are ignored (some filesystems refuse directory syncs,
// and the data-loss window is the OS's, not ours).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus an atomic rename — the same pattern nocap-prove uses
// for -out — so a crash mid-write never leaves a truncated proof at
// path.
func writeFileAtomic(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, mode); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}
