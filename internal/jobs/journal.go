package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// The journal is the durability backbone of the job layer: an
// append-only JSONL file in the manager's data directory where every
// state transition is written and fsync'd *before* the transition takes
// effect for callers. A submission is acknowledged only after its
// accepted record is on disk; a proof is reported done only after the
// proof file has been atomically renamed into place and the done record
// synced. Recovery is therefore a pure replay: snapshot (if present)
// then journal tail, the in-memory table a cache of their suffix state.
//
// Journal v2 (DESIGN.md §13): every record appended carries a CRC32
// checksum of its own JSON encoding, so replay distinguishes three
// kinds of damage instead of one:
//
//   - a torn tail (crash mid-append: unterminated or undecodable FINAL
//     line) is dropped and the file truncated back to its last clean
//     record — the affected job resumes from its previous state;
//   - a corrupt record anywhere (bad checksum, undecodable mid-file
//     line, semantically bogus fields) is skipped and counted, because
//     one flipped sector must not take down a journal with thousands of
//     healthy records around it;
//   - more than maxConsecutiveCorrupt corrupt records in a row is not
//     bit-rot but a destroyed file, and recovery refuses to start
//     rather than silently serve a fraction of the truth.
//
// Records from v1 journals (no crc field) are accepted unverified so an
// upgraded binary replays its existing history.

// journalName is the journal file's name inside the data directory.
const journalName = "journal.jsonl"

// proofsDirName is the subdirectory holding completed proof payloads.
const proofsDirName = "proofs"

// snapshotName is the compaction snapshot's file name (DESIGN.md §13).
const snapshotName = "snapshot.json"

// probeJobID is the reserved pseudo-job id of degraded-mode probe
// records; replay skips them.
const probeJobID = "_probe"

// maxConsecutiveCorrupt is the hard cap on corrupt records tolerated in
// a row before recovery refuses to start: past it the journal is not
// bit-rotten but destroyed, and replaying the survivors would present a
// confidently wrong job table.
const maxConsecutiveCorrupt = 16

// Disk-fault injection points (DESIGN.md §13). fiJournalAppend fires
// before every journal append (legacy point, models an EIO/ENOSPC
// refusal before any byte lands); fiJournalWrite fires at the write
// syscall and leaves a SHORT write behind — half the record's bytes,
// exactly the torn state a full disk produces; fiJournalFsync fires at
// the fsync after a clean write, the fsyncgate case where the data may
// or may not have reached the platter.
var (
	fiJournalAppend = faultinject.Register("jobs.journal.append")
	fiJournalWrite  = faultinject.Register("jobs.journal.write")
	fiJournalFsync  = faultinject.Register("jobs.journal.fsync")
)

// fiRecoverReplay fires once at the start of journal replay; readiness
// tests use a Delay plan here to hold the server in "recovering".
var fiRecoverReplay = faultinject.Register("jobs.recover.replay")

// recState is the journal-record state vocabulary. It is a superset of
// the public State set: "retrying" marks a failed attempt whose job went
// back to the queue with a backoff, which the public API reports as
// StateAccepted with a non-zero attempt count, and "probe" is the
// degraded-mode health probe — a no-op record whose only meaning is
// that the append that produced it succeeded.
type recState string

const (
	recAccepted  recState = "accepted"
	recRunning   recState = "running"
	recRetrying  recState = "retrying"
	recDone      recState = "done"
	recFailed    recState = "failed"
	recCancelled recState = "cancelled"
	recProbe     recState = "probe"
)

func validRecState(s recState) bool {
	switch s {
	case recAccepted, recRunning, recRetrying, recDone, recFailed, recCancelled, recProbe:
		return true
	}
	return false
}

// record is one journal line.
type record struct {
	Seq     uint64   `json:"seq"`
	Job     string   `json:"job"`
	State   recState `json:"state"`
	T       string   `json:"t,omitempty"`
	Spec    *Spec    `json:"spec,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	Error   string   `json:"error,omitempty"`
	Code    string   `json:"code,omitempty"`
	// BackoffMS records the scheduled retry delay (informational; after
	// a crash the job is re-enqueued immediately).
	BackoffMS  int64           `json:"backoff_ms,omitempty"`
	ProofFile  string          `json:"proof_file,omitempty"`
	ProofBytes int             `json:"proof_bytes,omitempty"`
	Stats      json.RawMessage `json:"stats,omitempty"`
	// Cached marks a done record whose proof came from the proof cache.
	Cached bool `json:"cached,omitempty"`
	// CRC is the IEEE CRC32 of this record's JSON encoding with the crc
	// field absent (journal v2). nil means a v1 record, accepted
	// unverified on replay.
	CRC *uint32 `json:"crc,omitempty"`
}

// encodeRecord marshals r with its v2 checksum and trailing newline.
// The CRC covers the record's own compact JSON encoding with the crc
// field omitted; verification re-derives that encoding from the decoded
// value, so any bit flip in any field — including inside the opaque
// Spec payload — breaks the match.
func encodeRecord(r record) ([]byte, error) {
	r.CRC = nil
	base, err := json.Marshal(r)
	if err != nil {
		return nil, zkerr.Internalf("jobs: marshal journal record: %v", err)
	}
	c := crc32.ChecksumIEEE(base)
	r.CRC = &c
	line, err := json.Marshal(r)
	if err != nil {
		return nil, zkerr.Internalf("jobs: marshal journal record: %v", err)
	}
	return append(line, '\n'), nil
}

// decodeRecord decodes and validates one journal line (without its
// newline). Every failure is classified under the zkerr taxonomy as
// malformed — the fuzz target FuzzDecodeRecord pins that hostile bytes
// can never panic this path or escape the taxonomy.
func decodeRecord(line []byte) (record, error) {
	var r record
	if err := json.Unmarshal(line, &r); err != nil {
		return record{}, zkerr.Malformedf("jobs: journal record undecodable: %v", err)
	}
	if r.Job == "" {
		return record{}, zkerr.Malformedf("jobs: journal record without a job id")
	}
	if !validRecState(r.State) {
		return record{}, zkerr.Malformedf("jobs: journal record with unknown state %q", r.State)
	}
	if r.Attempt < 0 || r.ProofBytes < 0 || r.BackoffMS < 0 {
		return record{}, zkerr.Malformedf("jobs: journal record with negative counters (attempt=%d proof_bytes=%d backoff_ms=%d)",
			r.Attempt, r.ProofBytes, r.BackoffMS)
	}
	if r.CRC != nil {
		want := *r.CRC
		r.CRC = nil
		base, err := json.Marshal(r)
		if err != nil {
			return record{}, zkerr.Malformedf("jobs: journal record re-encode: %v", err)
		}
		if got := crc32.ChecksumIEEE(base); got != want {
			return record{}, zkerr.Malformedf("jobs: journal record checksum mismatch (crc %08x, computed %08x)", want, got)
		}
		r.CRC = &want
	}
	return r, nil
}

// journal is the open append handle plus its counters.
type journal struct {
	path    string
	f       *os.File
	seq     uint64
	records int64
	bytes   int64
	// dirty is set after a failed write left bytes past the last clean
	// record and the truncate-back also failed; the next append retries
	// the truncate before writing anything.
	dirty bool
}

// replayInfo summarizes what recovery found.
type replayInfo struct {
	// snap is the compaction snapshot the journal tail applies over;
	// nil when no compaction has ever run.
	snap    *snapshot
	records []record
	// torn is 1 if the final record was damaged and dropped.
	torn int64
	// corrupt counts records skipped for failed checksums or
	// undecodable/bogus content anywhere before the tail.
	corrupt int64
	// orphanTemps counts stranded *.tmp-* files swept from the data
	// directory tree (crash between temp-write and rename).
	orphanTemps int64
}

// openJournal reads (replaying) and opens (for append) the snapshot and
// journal in dir, creating the directory layout on first use.
func openJournal(dir string) (*journal, replayInfo, error) {
	if err := os.MkdirAll(filepath.Join(dir, proofsDirName), 0o755); err != nil {
		return nil, replayInfo{}, fmt.Errorf("jobs: create data dir: %w", err)
	}
	if err := faultinject.Check(fiRecoverReplay); err != nil {
		return nil, replayInfo{}, err
	}
	var info replayInfo
	// A crash between a temp write and its rename (snapshot, journal
	// tail, or proof persist) strands a *.tmp-* file that nothing will
	// ever reference again; sweep them first so they cannot accumulate
	// across crashes. Proof files orphaned AFTER a rename (their owning
	// job GC'd mid-compaction) are swept later, once the job table
	// exists to check references against.
	info.orphanTemps = sweepTempFiles(dir, filepath.Join(dir, proofsDirName))

	snap, err := loadSnapshot(dir)
	if err != nil {
		return nil, replayInfo{}, err
	}
	info.snap = snap
	baseSeq := uint64(0)
	if snap != nil {
		baseSeq = snap.BaseSeq
	}

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, replayInfo{}, fmt.Errorf("jobs: read journal: %w", err)
	}
	cleanLen, err := parseJournal(data, baseSeq, &info)
	if err != nil {
		return nil, replayInfo{}, err
	}
	if cleanLen < int64(len(data)) {
		// Drop the torn tail so the next append starts on a clean line.
		if err := os.Truncate(path, cleanLen); err != nil {
			return nil, replayInfo{}, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, replayInfo{}, fmt.Errorf("jobs: open journal: %w", err)
	}
	jl := &journal{path: path, f: f, seq: baseSeq, records: int64(len(info.records)), bytes: cleanLen}
	for _, r := range info.records {
		if r.Seq > jl.seq {
			jl.seq = r.Seq
		}
	}
	// Make the directory entries (journal file, proofs dir) durable too.
	syncDir(dir)
	return jl, info, nil
}

// parseJournal decodes the journal bytes into info, tolerating a torn
// final record and skipping (with a count and a consecutive-run cap)
// corrupt records anywhere else. Records with seq <= baseSeq are
// already folded into the snapshot and are skipped silently — after a
// crash between the snapshot rename and the journal-tail swap the full
// pre-compaction journal is still on disk, and replaying its prefix
// over the snapshot would double-apply it. Returns the byte length of
// the clean prefix (everything before the torn tail, if any).
func parseJournal(data []byte, baseSeq uint64, info *replayInfo) (int64, error) {
	offset := int64(0)
	consecutive := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated final line: a torn append. Drop it.
			info.torn++
			return offset, nil
		}
		line := data[:nl]
		rest := data[nl+1:]
		r, err := decodeRecord(line)
		if err != nil {
			if len(rest) == 0 && json.Valid(line) == false {
				// Final record, terminated but not even JSON: the newline
				// landed and the payload did not. A torn append, not
				// corruption — truncate it away like the unterminated case.
				info.torn++
				return offset, nil
			}
			// Corruption in flight data: skip the record, count it, and
			// keep the survivors — unless too many fall in a row.
			info.corrupt++
			consecutive++
			if consecutive > maxConsecutiveCorrupt {
				return 0, zkerr.Malformedf(
					"jobs: journal corrupt at byte %d: %d consecutive undecodable records (cap %d): %v",
					offset, consecutive, maxConsecutiveCorrupt, err)
			}
		} else {
			consecutive = 0
			if r.Seq > baseSeq && r.State != recProbe {
				info.records = append(info.records, r)
			}
		}
		offset += int64(nl + 1)
		data = rest
	}
	return offset, nil
}

// append writes one record and fsyncs it. The caller holds the manager
// lock, which serializes seq assignment and file writes.
//
// Failure discipline: a failed or short write can leave a torn fragment
// at the file's tail, and every later append would then glue its record
// onto that fragment — turning one bad sector's worth of damage into an
// unbounded run of undecodable lines. So any write/fsync failure is
// followed by a truncate back to the last clean length; if even the
// truncate fails the journal is marked dirty and the next append
// retries it before writing a byte.
func (jl *journal) append(r record) error {
	if err := faultinject.Check(fiJournalAppend); err != nil {
		return zkerr.Internalf("jobs: journal append: %v", err)
	}
	if jl.dirty {
		if err := jl.f.Truncate(jl.bytes); err != nil {
			return fmt.Errorf("jobs: journal still dirty after failed write (truncate: %w)", err)
		}
		jl.dirty = false
	}
	jl.seq++
	r.Seq = jl.seq
	r.T = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := encodeRecord(r)
	if err != nil {
		return err
	}
	if ferr := faultinject.Check(fiJournalWrite); ferr != nil {
		// Model the injected fault as a SHORT write: half the record
		// lands, exactly what ENOSPC mid-record leaves behind.
		_, _ = jl.f.Write(line[:len(line)/2])
		jl.recoverTail()
		return fmt.Errorf("jobs: journal write: %w", ferr)
	}
	n, err := jl.f.Write(line)
	if err != nil || n < len(line) {
		jl.recoverTail()
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(line))
		}
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	if ferr := faultinject.Check(fiJournalFsync); ferr != nil {
		// After a (real or injected) fsync failure the page cache state
		// is unknowable; the record is treated as not durable and the
		// tail rolled back so the on-disk file stays parseable.
		jl.recoverTail()
		return fmt.Errorf("jobs: journal fsync: %w", ferr)
	}
	if err := jl.f.Sync(); err != nil {
		jl.recoverTail()
		return fmt.Errorf("jobs: journal fsync: %w", err)
	}
	jl.records++
	jl.bytes += int64(len(line))
	return nil
}

// recoverTail truncates the journal back to its last clean record after
// a failed append, so the failure stays a failure instead of becoming
// persistent tail corruption. A failed truncate marks the journal dirty
// for the next append to retry.
func (jl *journal) recoverTail() {
	if err := jl.f.Truncate(jl.bytes); err != nil {
		jl.dirty = true
	}
}

func (jl *journal) close() error { return jl.f.Close() }

// sweepTempFiles removes stranded temp files (pattern <base>.tmp-*, as
// written by writeFileAtomic and the compactor) from the given
// directories and returns how many were deleted.
func sweepTempFiles(dirs ...string) int64 {
	var n int64
	for _, dir := range dirs {
		matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
		for _, path := range matches {
			if info, err := os.Stat(path); err != nil || info.IsDir() {
				continue
			}
			if os.Remove(path) == nil {
				n++
			}
		}
	}
	return n
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable; errors are ignored (some filesystems refuse directory syncs,
// and the data-loss window is the OS's, not ours).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus an atomic rename — the same pattern nocap-prove uses
// for -out — so a crash mid-write never leaves a truncated proof at
// path. faultPoint, when non-empty, names a faultinject point checked
// between the temp write and its fsync, so chaos tests can fail the
// persist exactly where ENOSPC would.
func writeFileAtomic(path string, data []byte, mode os.FileMode, faultPoint string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if faultPoint != "" {
		if err := faultinject.Check(faultPoint); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, mode); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}
