package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nocap/internal/zkerr"
)

// writeJournal writes raw bytes as the journal of a fresh data dir.
func writeJournal(t *testing.T, raw string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// recLine marshals a record WITHOUT a checksum — the v1 wire format —
// so these fixtures double as the legacy-journal compatibility corpus.
func recLine(t *testing.T, r record) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// crcLine is the v2 form: encodeRecord's output, checksum included.
func crcLine(t *testing.T, r record) string {
	t.Helper()
	b, err := encodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseAll runs parseJournal with no snapshot horizon.
func parseAll(raw []byte) (replayInfo, int64, error) {
	var info replayInfo
	clean, err := parseJournal(raw, 0, &info)
	return info, clean, err
}

func TestParseJournalCleanFile(t *testing.T) {
	raw := recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted}) +
		crcLine(t, record{Seq: 2, Job: "j-a", State: recRunning, Attempt: 1}) +
		crcLine(t, record{Seq: 3, Job: "j-a", State: recDone, Attempt: 1})
	info, clean, err := parseAll([]byte(raw))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(info.records) != 3 || info.torn != 0 {
		t.Fatalf("records %d torn %d", len(info.records), info.torn)
	}
	if clean != int64(len(raw)) {
		t.Fatalf("clean %d, want %d", clean, len(raw))
	}
}

func TestParseJournalTornUnterminatedFinal(t *testing.T) {
	good := recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted})
	raw := good + `{"seq":2,"job":"j-a","sta` // crash mid-append, no newline
	info, clean, err := parseAll([]byte(raw))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(info.records) != 1 || info.torn != 1 {
		t.Fatalf("records %d torn %d, want 1/1", len(info.records), info.torn)
	}
	if clean != int64(len(good)) {
		t.Fatalf("clean prefix %d, want %d", clean, len(good))
	}
}

func TestParseJournalTornTerminatedGarbageFinal(t *testing.T) {
	good := recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted})
	raw := good + "\x00\x00garbage\n" // newline landed, payload did not
	info, clean, err := parseAll([]byte(raw))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(info.records) != 1 || info.torn != 1 {
		t.Fatalf("records %d torn %d, want 1/1", len(info.records), info.torn)
	}
	if clean != int64(len(good)) {
		t.Fatalf("clean prefix %d, want %d", clean, len(good))
	}
}

// Journal v2: mid-file corruption is skipped and counted, not fatal —
// one flipped sector must not strand every healthy record around it.
func TestParseJournalMidFileCorruptionSkippedAndCounted(t *testing.T) {
	raw := recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted}) +
		"not json at all\n" +
		recLine(t, record{Seq: 3, Job: "j-a", State: recDone})
	info, clean, err := parseAll([]byte(raw))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(info.records) != 2 || info.corrupt != 1 || info.torn != 0 {
		t.Fatalf("records %d corrupt %d torn %d, want 2/1/0", len(info.records), info.corrupt, info.torn)
	}
	if clean != int64(len(raw)) {
		t.Fatalf("clean %d, want %d (corrupt records stay in place until compaction)", clean, len(raw))
	}
}

// A record whose stored checksum disagrees with its content is corrupt
// even though it is perfectly valid JSON.
func TestParseJournalChecksumMismatchSkipped(t *testing.T) {
	bad := crcLine(t, record{Seq: 2, Job: "j-a", State: recRunning, Attempt: 1})
	// Flip one byte inside the job id, leaving the stored crc behind.
	bad = strings.Replace(bad, `"job":"j-a"`, `"job":"j-b"`, 1)
	raw := crcLine(t, record{Seq: 1, Job: "j-a", State: recAccepted}) +
		bad +
		crcLine(t, record{Seq: 3, Job: "j-a", State: recDone, Attempt: 1})
	info, _, err := parseAll([]byte(raw))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(info.records) != 2 || info.corrupt != 1 {
		t.Fatalf("records %d corrupt %d, want 2/1", len(info.records), info.corrupt)
	}
	for _, r := range info.records {
		if r.Seq == 2 {
			t.Fatal("checksum-mismatched record survived replay")
		}
	}
}

// Past maxConsecutiveCorrupt corrupt records in a row the journal is
// not bit-rotten but destroyed: recovery must refuse to start.
func TestParseJournalConsecutiveCorruptionCapFailsLoudly(t *testing.T) {
	raw := recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted})
	for i := 0; i <= maxConsecutiveCorrupt; i++ {
		raw += "corrupt line\n"
	}
	raw += recLine(t, record{Seq: 2, Job: "j-a", State: recDone})
	if _, _, err := parseAll([]byte(raw)); !errors.Is(err, zkerr.ErrMalformedProof) {
		t.Fatalf("beyond consecutive cap: %v, want ErrMalformedProof", err)
	}
	// One fewer stays under the cap: skip-and-count applies.
	raw = recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted})
	for i := 0; i < maxConsecutiveCorrupt; i++ {
		raw += "corrupt line\n"
	}
	raw += recLine(t, record{Seq: 2, Job: "j-a", State: recDone})
	info, _, err := parseAll([]byte(raw))
	if err != nil {
		t.Fatalf("at the cap: %v", err)
	}
	if len(info.records) != 2 || info.corrupt != int64(maxConsecutiveCorrupt) {
		t.Fatalf("records %d corrupt %d", len(info.records), info.corrupt)
	}
}

// decodeRecord round-trips encodeRecord and rejects semantic garbage
// with the zkerr taxonomy.
func TestDecodeRecordValidation(t *testing.T) {
	line, err := encodeRecord(record{Seq: 7, Job: "j-a", State: recDone, Attempt: 2, ProofBytes: 9})
	if err != nil {
		t.Fatal(err)
	}
	r, err := decodeRecord(line[:len(line)-1])
	if err != nil {
		t.Fatalf("decode own encoding: %v", err)
	}
	if r.Seq != 7 || r.Job != "j-a" || r.State != recDone || r.CRC == nil {
		t.Fatalf("round-trip mangled record: %+v", r)
	}
	for name, raw := range map[string]string{
		"no-job":           `{"seq":1,"state":"done"}`,
		"unknown-state":    `{"seq":1,"job":"j-a","state":"zombie"}`,
		"negative-attempt": `{"seq":1,"job":"j-a","state":"done","attempt":-1}`,
		"truncated":        string(line[:len(line)/2]),
	} {
		if _, err := decodeRecord([]byte(raw)); !errors.Is(err, zkerr.ErrMalformedProof) {
			t.Fatalf("%s: %v, want ErrMalformedProof", name, err)
		}
	}
}

// TestOpenTruncatesTornTail: openJournal must physically truncate the
// torn tail so subsequent appends start on a clean line boundary.
func TestOpenTruncatesTornTail(t *testing.T) {
	good := recLine(t, record{Seq: 1, Job: "j-a", State: recAccepted})
	dir := writeJournal(t, good+`{"seq":2,"job":"j-a","state":"runn`)
	jl, info, err := openJournal(dir)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	defer jl.close()
	if info.torn != 1 || len(info.records) != 1 {
		t.Fatalf("torn %d records %d", info.torn, len(info.records))
	}
	if err := jl.append(record{Job: "j-a", State: recRunning, Attempt: 1}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	// Re-parse from disk: both records decode, nothing torn.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	info2, _, err := parseAll(data)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(info2.records) != 2 || info2.torn != 0 {
		t.Fatalf("after append: records %d torn %d, want 2/0", len(info2.records), info2.torn)
	}
	// Sequence numbering continues past the surviving record.
	if info2.records[1].Seq != 2 {
		t.Fatalf("resumed seq %d, want 2", info2.records[1].Seq)
	}
}

// TestTornFinalRecordRecoversFromPreviousState is the satellite's
// end-to-end case: a journal whose final record (a terminal "done") was
// torn off mid-write must recover the job from its previous journaled
// state — running — and re-enqueue it to completion.
func TestTornFinalRecordRecoversFromPreviousState(t *testing.T) {
	dir := t.TempDir()

	// Run a job to completion to get a realistic journal.
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{Proof: []byte("first")}, nil
	})
	cfg.Dir = dir
	m1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, id)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	m1.Close(ctx)
	cancel()

	// Tear the final (done) record: keep a strict prefix of its bytes.
	jp := filepath.Join(dir, journalName)
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"done"`) {
		t.Fatalf("unexpected final record: %q", last)
	}
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(jp, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery: the done record is gone, so the job's last clean state
	// is running → re-enqueued (attempt refunded) and completed again.
	var reran bool
	cfg2 := cfg
	cfg2.Exec = func(ctx context.Context, spec Spec) (Result, error) {
		reran = true
		return Result{Proof: []byte("second")}, nil
	}
	m2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen over torn journal: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m2.Close(ctx)
	}()
	if mm := m2.Metrics(); mm.TornRecords != 1 || mm.RecoveredJobs != 1 {
		t.Fatalf("torn %d recovered %d, want 1/1", mm.TornRecords, mm.RecoveredJobs)
	}
	info := waitTerminal(t, m2, id)
	if info.State != StateDone {
		t.Fatalf("state %s (err %q), want done", info.State, info.Error)
	}
	if !info.Recovered {
		t.Fatal("job not flagged recovered")
	}
	if info.Attempts != 1 {
		t.Fatalf("attempts %d, want 1 (interrupted attempt refunded)", info.Attempts)
	}
	if !reran {
		t.Fatal("recovered job never re-executed")
	}
	proof, err := m2.Proof(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(proof) != "second" {
		t.Fatalf("proof %q, want re-proved bytes", proof)
	}
	assertExactlyOneTerminal(t, dir)
}

// TestTornAcceptedRecordIsDroppedSilently: a submission whose accepted
// record tore was never acknowledged to the client, so recovery must
// drop it — no ghost job.
func TestTornAcceptedRecordIsDroppedSilently(t *testing.T) {
	spec := Spec{Payload: json.RawMessage(`1`)}
	full := recLine(t, record{Seq: 1, Job: "j-ghost", State: recAccepted, Spec: &spec})
	dir := writeJournal(t, full[:len(full)/2])
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	})
	cfg.Dir = dir
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	}()
	if _, err := m.Get("j-ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("torn-accepted job resurfaced: %v", err)
	}
	if got := len(m.List()); got != 0 {
		t.Fatalf("%d jobs after recovering an unacked submission, want 0", got)
	}
	if mm := m.Metrics(); mm.TornRecords != 1 {
		t.Fatalf("torn records %d, want 1", mm.TornRecords)
	}
}

// TestReplayOrphanTransitionSkippedAndCounted: a running record for a
// job with no accepted record means the accepted record was lost to
// corruption. Under journal v2's skip-and-count policy the orphan is
// itself skipped and counted — failing loudly would turn one corrupt
// record into a refusal to start.
func TestReplayOrphanTransitionSkippedAndCounted(t *testing.T) {
	dir := writeJournal(t,
		recLine(t, record{Seq: 1, Job: "j-x", State: recRunning, Attempt: 1})+
			recLine(t, record{Seq: 2, Job: "j-ok", State: recAccepted})+
			recLine(t, record{Seq: 3, Job: "j-ok", State: recDone, Attempt: 1}))
	cfg := testConfig(t, func(ctx context.Context, spec Spec) (Result, error) {
		return Result{}, nil
	})
	cfg.Dir = dir
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open over orphan transition: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	}()
	if _, err := m.Get("j-x"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("orphan job resurfaced: %v", err)
	}
	if info, err := m.Get("j-ok"); err != nil || info.State != StateDone {
		t.Fatalf("healthy neighbour: %+v, %v", info, err)
	}
	if mm := m.Metrics(); mm.CorruptRecords != 1 {
		t.Fatalf("corrupt records %d, want 1", mm.CorruptRecords)
	}
}

// TestJournalSeqMonotonic pins that appends keep a strictly increasing
// sequence across reopen.
func TestJournalSeqMonotonic(t *testing.T) {
	dir := t.TempDir()
	jl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := jl.append(record{Job: "j-a", State: recAccepted}); err != nil {
			t.Fatal(err)
		}
	}
	jl.close()
	jl2, info, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.close()
	if err := jl2.append(record{Job: "j-a", State: recRunning}); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i, r := range append(info.records, record{Seq: jl2.seq}) {
		if r.Seq <= last {
			t.Fatalf("record %d seq %d not increasing past %d", i, r.Seq, last)
		}
		last = r.Seq
	}
	if jl2.seq != 4 {
		t.Fatalf("seq after reopen+append = %d, want 4", jl2.seq)
	}
}

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "proof.bin")
	if err := writeFileAtomic(path, []byte("short"), 0o644, ""); err != nil {
		t.Fatal(err)
	}
	long := []byte(strings.Repeat("x", 4096))
	if err := writeFileAtomic(path, long, 0o600, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(long) {
		t.Fatalf("file %d bytes, want %d", len(data), len(long))
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("leftover files: %v", names)
	}
}

// TestJournalGrowthMetrics sanity-checks the byte/record counters the
// metrics endpoint reports.
func TestJournalGrowthMetrics(t *testing.T) {
	dir := t.TempDir()
	jl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.close()
	if jl.records != 0 || jl.bytes != 0 {
		t.Fatalf("fresh journal records %d bytes %d", jl.records, jl.bytes)
	}
	for i := 0; i < 5; i++ {
		if err := jl.append(record{Job: fmt.Sprintf("j-%d", i), State: recAccepted}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if jl.records != 5 || jl.bytes != st.Size() {
		t.Fatalf("counters records=%d bytes=%d, disk=%d", jl.records, jl.bytes, st.Size())
	}
}
