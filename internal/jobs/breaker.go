package jobs

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's externally visible state.
type BreakerState int32

const (
	// BreakerClosed: normal operation, submissions and attempts flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: too many consecutive internal failures; submissions
	// are shed with a typed 503 until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe attempt is
	// allowed through. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a consecutive-failure circuit breaker guarding the proving
// backend. Only failures classified as internal (machinery faults, not
// input faults) count; client errors and soundness rejections say
// nothing about backend health and leave the streak untouched.
//
// The clock is injected so tests drive state transitions without
// sleeping.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive internal failures to trip
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	state    BreakerState
	failures int       // current consecutive internal-failure streak
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int64     // lifetime count of closed/half-open → open
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// State reports the current state, promoting open → half-open when the
// cooldown has elapsed.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *breaker) stateLocked() BreakerState {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
	}
	return b.state
}

// AllowSubmit reports whether a new job submission should be admitted.
// Half-open admits submissions (they queue behind the probe); only a
// fully open breaker sheds load. The second return is the remaining
// cooldown, for Retry-After hints.
func (b *breaker) AllowSubmit() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stateLocked() == BreakerOpen {
		return false, b.cooldown - b.now().Sub(b.openedAt)
	}
	return true, 0
}

// AllowAttempt reports whether a proving attempt may start now. In
// half-open state only one probe is admitted at a time; everything else
// waits for its verdict. probe reports whether this grant holds that
// probe slot: a granted attempt that never reaches Success or Failure
// (shed by the gate, job already terminal, manager closing) must hand
// the slot back via abandonProbe — otherwise the breaker sits half-open
// with its only probe leaked and no attempt ever runs again.
func (b *breaker) AllowAttempt() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		return true, false
	case BreakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// abandonProbe returns a granted half-open probe slot without recording
// a verdict: the attempt never actually ran, so backend health is still
// unknown and the next dispatch may claim the probe.
func (b *breaker) abandonProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Success records a completed attempt: any success proves the backend
// healthy, resets the streak, and closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.state = BreakerClosed
}

// Failure records a failed attempt. internal says whether the failure
// was an internal-class fault; only those advance the streak. A failed
// half-open probe re-opens immediately regardless of threshold.
func (b *breaker) Failure(internal bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stateLocked()
	if !internal {
		// Client-caused failures end a half-open probe without a verdict
		// on backend health: stay half-open and let the next probe run.
		b.probing = false
		return
	}
	b.failures++
	if st == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	}
}

// Trips returns the lifetime trip count (for metrics).
func (b *breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
