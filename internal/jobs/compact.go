package jobs

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"nocap/internal/faultinject"
	"nocap/internal/zkerr"
)

// Snapshot + compaction (DESIGN.md §13). The journal is append-only, so
// a long-lived manager's durable state grows without bound even though
// its live state does not. The compactor bounds it: when the journal
// passes a byte or record cap it (1) garbage-collects terminal jobs
// (and their proof files) older than the retention window, (2) writes
// the surviving job table to snapshot.json atomically, and (3) swaps
// the journal for just its post-snapshot tail. Recovery then replays
// snapshot-then-tail.
//
// Crash safety is rename-commit at every step, in an order where each
// prefix of the protocol recovers a correct state:
//
//	capture (under lock): job table, BaseSeq = journal seq, tail offset
//	  → crash here: nothing on disk changed.
//	snapshot.json written via temp + rename + dir-fsync
//	  → crash before the rename: old snapshot (or none) + full journal.
//	  → crash after: new snapshot + full journal — records with
//	    seq <= BaseSeq are skipped on replay, so nothing double-applies.
//	journal tail copied to a temp file, fsync'd, renamed over journal
//	  → crash before the rename: new snapshot + full journal (as above).
//	  → crash after: snapshot + tail, the compacted steady state.
//	GC'd proof files deleted last
//	  → crash before: files orphaned, swept at next open (they are
//	    unreferenced by then); never deleted while any recoverable
//	    state still references them.
//
// The compactor also repairs journal-lost jobs: a terminal state whose
// journal append failed becomes durable the moment the snapshot rename
// lands, so the journal_lost flag is cleared for every job the snapshot
// captured.

// snapshotVersion is the snapshot.json format version.
const snapshotVersion = 1

// Compaction fault/kill injection points. fiSnapshotWrite fires inside
// the snapshot's atomic write (between temp write and fsync — the
// ENOSPC position); fiProofPersist likewise for proof files. The
// fiCompact* points are the three SIGKILL windows of the chaos matrix:
// before the snapshot rename, after it (before the tail swap), and
// during the swap (tail temp written, final rename pending).
var (
	fiSnapshotWrite   = faultinject.Register("jobs.snapshot.write")
	fiProofPersist    = faultinject.Register("jobs.proof.persist")
	fiCompactSnapshot = faultinject.Register("jobs.compact.snapshot")
	fiCompactTruncate = faultinject.Register("jobs.compact.truncate")
	fiCompactSwap     = faultinject.Register("jobs.compact.swap")
)

// snapJob is one job's durable form inside a snapshot. Only state that
// journal replay itself would reconstruct is persisted — in particular
// no recovered or cancel-requested flags — so recovering from
// snapshot+tail and recovering from the full journal yield identical
// job tables.
type snapJob struct {
	ID         string          `json:"id"`
	State      State           `json:"state"`
	Spec       Spec            `json:"spec"`
	Attempt    int             `json:"attempt,omitempty"`
	Error      string          `json:"error,omitempty"`
	Code       string          `json:"code,omitempty"`
	Cached     bool            `json:"cached,omitempty"`
	ProofFile  string          `json:"proof_file,omitempty"`
	ProofBytes int             `json:"proof_bytes,omitempty"`
	Stats      json.RawMessage `json:"stats,omitempty"`
	TerminalAt string          `json:"terminal_at,omitempty"`
}

// snapshot is the durable compaction state: the whole job table as of
// journal sequence BaseSeq. Journal records with seq <= BaseSeq are
// folded in; replay applies only the tail beyond it.
type snapshot struct {
	Version int       `json:"version"`
	BaseSeq uint64    `json:"base_seq"`
	T       string    `json:"t,omitempty"`
	Jobs    []snapJob `json:"jobs"`
	// CRC is the IEEE CRC32 of the snapshot's JSON encoding with the
	// crc field absent, same discipline as journal records.
	CRC *uint32 `json:"crc,omitempty"`
}

// encodeSnapshot marshals s with its checksum.
func encodeSnapshot(s snapshot) ([]byte, error) {
	s.CRC = nil
	base, err := json.Marshal(s)
	if err != nil {
		return nil, zkerr.Internalf("jobs: marshal snapshot: %v", err)
	}
	c := crc32.ChecksumIEEE(base)
	s.CRC = &c
	return json.Marshal(s)
}

// loadSnapshot reads and verifies dir's snapshot; (nil, nil) when none
// exists. Unlike journal records — where damage is skipped record by
// record — a snapshot that fails its checksum is fatal: it is the only
// copy of every pre-compaction job, it was written atomically (so a
// torn write cannot produce one), and "skipping" it would silently
// forget the journal's entire folded history.
func loadSnapshot(dir string) (*snapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("jobs: read snapshot: %w", err)
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, zkerr.Malformedf("jobs: snapshot undecodable: %v", err)
	}
	if s.Version != snapshotVersion {
		return nil, zkerr.Malformedf("jobs: snapshot version %d (want %d)", s.Version, snapshotVersion)
	}
	if s.CRC == nil {
		return nil, zkerr.Malformedf("jobs: snapshot without checksum")
	}
	want := *s.CRC
	s.CRC = nil
	base, err := json.Marshal(s)
	if err != nil {
		return nil, zkerr.Malformedf("jobs: snapshot re-encode: %v", err)
	}
	if got := crc32.ChecksumIEEE(base); got != want {
		return nil, zkerr.Malformedf("jobs: snapshot checksum mismatch (crc %08x, computed %08x)", want, got)
	}
	for _, j := range s.Jobs {
		if j.ID == "" {
			return nil, zkerr.Malformedf("jobs: snapshot job without an id")
		}
		switch j.State {
		case StateAccepted, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			return nil, zkerr.Malformedf("jobs: snapshot job %s with unknown state %q", j.ID, j.State)
		}
	}
	return &s, nil
}

// compactDue reports whether a cap is crossed and names the trigger.
func (m *Manager) compactDue() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing || m.degraded {
		// A failing disk cannot compact; probes own the recovery path.
		return "", false
	}
	if m.cfg.JournalMaxBytes > 0 && m.journal.bytes >= m.cfg.JournalMaxBytes {
		return "journal-bytes", true
	}
	if m.cfg.JournalMaxRecords > 0 && m.journal.records >= m.cfg.JournalMaxRecords {
		return "journal-records", true
	}
	return "", false
}

// compactor is the background loop: check the caps, compact when due.
func (m *Manager) compactor() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.CompactCheck)
	defer tick.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-tick.C:
			if trigger, due := m.compactDue(); due {
				if err := m.compact(trigger); err != nil {
					m.logf("nocap-jobs event=compaction_failed trigger=%s err=%q", trigger, err)
				}
			}
		}
	}
}

// Compact runs one compaction cycle synchronously (the background
// compactor calls the same path when a cap is crossed).
func (m *Manager) Compact() error { return m.compact("manual") }

func (m *Manager) compact(trigger string) error {
	m.compactMu.Lock()
	defer m.compactMu.Unlock()
	start := time.Now()

	// Phase 0 — capture, under the manager lock: the job table (minus
	// retention-expired terminal jobs), the sequence horizon, and the
	// tail offset. Nothing durable changes here; expired jobs leave the
	// table but their proof files stay on disk until the swap commits.
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return ErrClosed
	}
	var gcProofs []string
	if m.cfg.Retention > 0 {
		cutoff := time.Now().Add(-m.cfg.Retention)
		kept := m.order[:0]
		for _, j := range m.order {
			if j.terminal() && !j.terminalAt.IsZero() && j.terminalAt.Before(cutoff) {
				delete(m.byID, j.id)
				if j.proofFile != "" {
					gcProofs = append(gcProofs, j.proofFile)
				}
				m.retired++
				continue
			}
			kept = append(kept, j)
		}
		// Zero the dropped tail so GC'd jobRecs are not pinned.
		for i := len(kept); i < len(m.order); i++ {
			m.order[i] = nil
		}
		m.order = kept
	}
	snap := snapshot{
		Version: snapshotVersion,
		BaseSeq: m.journal.seq,
		T:       time.Now().UTC().Format(time.RFC3339Nano),
		Jobs:    make([]snapJob, 0, len(m.order)),
	}
	snapped := make([]*jobRec, 0, len(m.order))
	for _, j := range m.order {
		sj := snapJob{
			ID: j.id, State: j.state, Spec: j.spec, Attempt: j.attempt,
			Error: j.lastErr, Code: j.lastCode, Cached: j.cached,
			ProofFile: j.proofFile, ProofBytes: j.proofBytes, Stats: j.stats,
		}
		if !j.terminalAt.IsZero() {
			sj.TerminalAt = j.terminalAt.UTC().Format(time.RFC3339Nano)
		}
		snap.Jobs = append(snap.Jobs, sj)
		snapped = append(snapped, j)
	}
	tailStart := m.journal.bytes
	bytesBefore, recordsBefore := m.journal.bytes, m.journal.records
	m.mu.Unlock()

	// Phase 1 — snapshot. The rename inside writeFileAtomic is the
	// commit point; a kill at fiCompactSnapshot recovers from the old
	// snapshot and the intact journal.
	if err := faultinject.Check(fiCompactSnapshot); err != nil {
		return err
	}
	data, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(m.cfg.Dir, snapshotName), data, 0o644, fiSnapshotWrite); err != nil {
		err = fmt.Errorf("jobs: write snapshot: %w", err)
		m.mu.Lock()
		m.noteDiskFailureLocked("snapshot.write", err)
		m.mu.Unlock()
		return err
	}

	// Phase 2 — swap the journal for its tail. A kill at
	// fiCompactTruncate (before anything) or fiCompactSwap (tail temp
	// written, final rename pending) recovers from the new snapshot
	// plus the full journal, whose seq <= BaseSeq prefix replay skips.
	if err := faultinject.Check(fiCompactTruncate); err != nil {
		return err
	}
	m.mu.Lock()
	if m.closing {
		// Close may already have released the journal handle; swapping
		// now would strand an open file past Close's guarantees.
		m.mu.Unlock()
		return ErrClosed
	}
	err = m.journal.swapTail(tailStart)
	bytesAfter, recordsAfter := m.journal.bytes, m.journal.records
	if err != nil {
		m.noteDiskFailureLocked("journal.swap", err)
	} else {
		// The snapshot rename made every captured job's state durable,
		// including terminal states whose journal append had failed.
		for _, j := range snapped {
			if j.journalLost && j.terminal() {
				j.journalLost = false
			}
		}
		m.compactions++
		m.snapshotBytes = int64(len(data))
		m.noteDiskSuccessLocked()
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}

	// Phase 3 — now that no recoverable state references them, drop the
	// GC'd proof files. A crash in here strands orphans that the next
	// open's sweep deletes.
	for _, p := range gcProofs {
		_ = os.Remove(p)
	}

	m.logf("nocap-jobs event=compaction trigger=%s duration=%s bytes_before=%d bytes_after=%d records_before=%d records_after=%d snapshot_bytes=%d snapshot_jobs=%d gc_jobs=%d",
		trigger, time.Since(start).Round(time.Microsecond), bytesBefore, bytesAfter, recordsBefore, recordsAfter, len(data), len(snap.Jobs), len(gcProofs))
	return nil
}

// swapTail atomically replaces the journal file with its own bytes from
// tailStart on: copy tail to a temp file, fsync, rename over the
// journal, reopen the append handle. Caller holds the manager lock (no
// concurrent appends). On error the original journal and handle remain
// valid.
func (jl *journal) swapTail(tailStart int64) error {
	tail, err := readFileRange(jl.path, tailStart, jl.bytes)
	if err != nil {
		return fmt.Errorf("jobs: read journal tail: %w", err)
	}
	dir := filepath.Dir(jl.path)
	tmp, err := os.CreateTemp(dir, journalName+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: journal tail temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(tail); err != nil {
		return fail(fmt.Errorf("jobs: write journal tail: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("jobs: sync journal tail: %w", err))
	}
	if err := faultinject.Check(fiCompactSwap); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("jobs: close journal tail: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("jobs: chmod journal tail: %w", err)
	}
	if err := os.Rename(tmpName, jl.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("jobs: swap journal: %w", err)
	}
	syncDir(dir)
	// The rename committed: move the handle to the new file. The old
	// handle points at the unlinked inode; close it and reopen.
	f, err := os.OpenFile(jl.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The swap is durable but the handle is gone; keep appending to
		// the unlinked file would lose records silently, so fail hard.
		return fmt.Errorf("jobs: reopen journal after swap: %w", err)
	}
	_ = jl.f.Close()
	jl.f = f
	jl.bytes = int64(len(tail))
	jl.records = countLines(tail)
	jl.dirty = false
	return nil
}

// readFileRange reads path's bytes in [from, to).
func readFileRange(path string, from, to int64) ([]byte, error) {
	if to <= from {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, to-from)
	if _, err := io.ReadFull(io.NewSectionReader(f, from, to-from), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func countLines(b []byte) int64 {
	var n int64
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}
