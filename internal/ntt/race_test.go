package ntt

import (
	"runtime"
	"sync"
	"testing"

	"nocap/internal/field"
)

// TestTwiddleConcurrentFirstUse hammers the concurrent-first-use path of
// the twiddle cache: many goroutines request the table for a freshly
// cleared size at once. Under -race this is the regression test for the
// old unsynchronized twiddleCache (which required Prepare before sharing
// a size across goroutines); it also asserts first-CAS-wins semantics —
// every racer must end up with the same backing array — and that the
// published table is correct.
func TestTwiddleConcurrentFirstUse(t *testing.T) {
	const logN = 13 // a size the other tests in this package do not pin
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}

	// Serial reference, computed before any concurrent access.
	n := 1 << logN
	want := make([]field.Element, n/2)
	w := field.RootOfUnity(logN)
	want[0] = field.One
	for i := 1; i < len(want); i++ {
		want[i] = field.Mul(want[i-1], w)
	}

	for round := 0; round < 25; round++ {
		resetTwiddleForTest(logN)

		start := make(chan struct{})
		got := make([][]field.Element, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				got[i] = twiddlesForTest(logN)
			}(i)
		}
		close(start)
		wg.Wait()

		for i := 1; i < workers; i++ {
			if &got[i][0] != &got[0][0] {
				t.Fatalf("round %d: goroutine %d got a different table than goroutine 0 (first-CAS-wins violated)", round, i)
			}
		}
		for i, e := range got[0] {
			if e != want[i] {
				t.Fatalf("round %d: twiddle[%d] = %v, want %v", round, i, e, want[i])
			}
		}
	}
}

// TestTwiddleConcurrentTransforms runs full transforms of a freshly
// cleared size from many goroutines at once; each result must match the
// serial transform, proving racers that lose the publication CAS still
// compute correctly.
func TestTwiddleConcurrentTransforms(t *testing.T) {
	const logN = 13
	n := 1 << logN

	in := randVec(n, 777)
	want := append([]field.Element(nil), in...)
	Forward(want)

	resetTwiddleForTest(logN)
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	errs := make([]int, workers) // first mismatching index+1, 0 = ok
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := append([]field.Element(nil), in...)
			<-start
			Forward(v)
			for i := range v {
				if v[i] != want[i] {
					errs[g] = i + 1
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	for g, e := range errs {
		if e != 0 {
			t.Fatalf("goroutine %d: transform mismatch at index %d", g, e-1)
		}
	}
}
