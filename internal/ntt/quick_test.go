package ntt

import (
	"testing"
	"testing/quick"

	"nocap/internal/field"
)

// toVec normalizes arbitrary fuzz input into a power-of-two element
// vector of at least 2 elements.
func toVec(raw []uint64) []field.Element {
	n := 2
	for n*2 <= len(raw) && n < 1<<10 {
		n *= 2
	}
	v := make([]field.Element, n)
	for i := 0; i < n && i < len(raw); i++ {
		v[i] = field.New(raw[i])
	}
	return v
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint64) bool {
		v := toVec(raw)
		orig := append([]field.Element(nil), v...)
		Forward(v)
		Inverse(v)
		for i := range v {
			if v[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLinearity(t *testing.T) {
	f := func(rawA, rawB []uint64, s uint64) bool {
		a := toVec(rawA)
		b := toVec(rawA) // same length as a
		for i := range b {
			if i < len(rawB) {
				b[i] = field.New(rawB[i])
			} else {
				b[i] = field.Zero
			}
		}
		c := field.New(s)
		comb := make([]field.Element, len(a))
		for i := range comb {
			comb[i] = field.Add(a[i], field.Mul(c, b[i]))
		}
		Forward(a)
		Forward(b)
		Forward(comb)
		for i := range comb {
			if comb[i] != field.Add(a[i], field.Mul(c, b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseval(t *testing.T) {
	// Plancherel-type invariant over Goldilocks: Σ x_i·y_{-i} relates to
	// the transform; we check the simpler convolution identity
	// NTT(x)·NTT(y) = NTT(x ⊛ y) pointwise via PolyMul's internals:
	// evaluating the product polynomial at ω^k equals the product of
	// evaluations.
	f := func(rawA, rawB []uint64) bool {
		a := toVec(rawA)
		b := toVec(rawB)
		prod := PolyMul(a, b)
		n := 1
		for n < len(prod) {
			n <<= 1
		}
		pa := make([]field.Element, n)
		pb := make([]field.Element, n)
		pp := make([]field.Element, n)
		copy(pa, a)
		copy(pb, b)
		copy(pp, prod)
		Forward(pa)
		Forward(pb)
		Forward(pp)
		for i := range pp {
			if pp[i] != field.Mul(pa[i], pb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
