package ntt

import (
	"math/rand"
	"testing"

	"nocap/internal/field"
)

func randVec(n int, seed int64) []field.Element {
	rng := rand.New(rand.NewSource(seed))
	v := make([]field.Element, n)
	for i := range v {
		v[i] = field.New(rng.Uint64())
	}
	return v
}

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(v []field.Element) []field.Element {
	n := len(v)
	logN := 0
	for 1<<logN < n {
		logN++
	}
	w := field.RootOfUnity(logN)
	out := make([]field.Element, n)
	for k := 0; k < n; k++ {
		wk := field.Exp(w, uint64(k))
		var acc, wjk field.Element = 0, field.One
		for j := 0; j < n; j++ {
			acc = field.Add(acc, field.Mul(v[j], wjk))
			wjk = field.Mul(wjk, wk)
		}
		out[k] = acc
	}
	return out
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		v := randVec(n, int64(n))
		want := naiveDFT(v)
		Forward(v)
		for i := range v {
			if v[i] != want[i] {
				t.Fatalf("n=%d: Forward[%d] = %v, want %v", n, i, v[i], want[i])
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 128, 1024, 1 << 14} {
		v := randVec(n, int64(n)+100)
		orig := append([]field.Element(nil), v...)
		Forward(v)
		Inverse(v)
		for i := range v {
			if v[i] != orig[i] {
				t.Fatalf("n=%d: round trip differs at %d", n, i)
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	// NTT(a + c·b) == NTT(a) + c·NTT(b) — the property Reed-Solomon
	// codeword combination relies on (paper §V-A).
	n := 512
	a := randVec(n, 1)
	b := randVec(n, 2)
	c := field.New(0xdeadbeef)
	comb := make([]field.Element, n)
	for i := range comb {
		comb[i] = field.Add(a[i], field.Mul(c, b[i]))
	}
	Forward(a)
	Forward(b)
	Forward(comb)
	for i := range comb {
		want := field.Add(a[i], field.Mul(c, b[i]))
		if comb[i] != want {
			t.Fatalf("linearity fails at %d", i)
		}
	}
}

func TestFourStepMatchesForward(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{16, 4, 4},
		{64, 8, 8},
		{256, 4, 64},
		{1024, 32, 32},
		{1 << 13, 1 << 6, 1 << 7}, // non-square split
	}
	for _, c := range cases {
		v := randVec(c.n, int64(c.n))
		want := append([]field.Element(nil), v...)
		Forward(want)
		FourStep(v, c.rows, c.cols)
		for i := range v {
			if v[i] != want[i] {
				t.Fatalf("n=%d rows=%d: four-step differs at %d", c.n, c.rows, i)
			}
		}
	}
}

func TestFourStepShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	FourStep(make([]field.Element, 16), 3, 5)
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	for _, n := range []int{0, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("n=%d: expected panic", n)
				}
			}()
			Forward(make([]field.Element, n))
		}()
	}
}

func TestPolyMul(t *testing.T) {
	// (1 + 2x)(3 + x + x^2) = 3 + 7x + 3x^2 + 2x^3
	a := []field.Element{field.New(1), field.New(2)}
	b := []field.Element{field.New(3), field.New(1), field.New(1)}
	got := PolyMul(a, b)
	want := []field.Element{field.New(3), field.New(7), field.New(3), field.New(2)}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coef %d = %v, want %v", i, got[i], want[i])
		}
	}
	if PolyMul(nil, a) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestPolyMulMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		la, lb := 1+rng.Intn(50), 1+rng.Intn(50)
		a, b := randVec(la, int64(trial)), randVec(lb, int64(trial)+1000)
		want := make([]field.Element, la+lb-1)
		for i := 0; i < la; i++ {
			for j := 0; j < lb; j++ {
				want[i+j] = field.Add(want[i+j], field.Mul(a[i], b[j]))
			}
		}
		got := PolyMul(a, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: coef %d differs", trial, i)
			}
		}
	}
}

func TestEvaluationSemantics(t *testing.T) {
	// Forward(v)[k] must equal poly(w^k): the property RS encoding uses.
	n := 64
	v := randVec(n, 42)
	coeffs := append([]field.Element(nil), v...)
	Forward(v)
	w := field.RootOfUnity(6)
	for _, k := range []int{0, 1, 5, 63} {
		x := field.Exp(w, uint64(k))
		var eval field.Element
		for i := len(coeffs) - 1; i >= 0; i-- {
			eval = field.Add(field.Mul(eval, x), coeffs[i])
		}
		if v[k] != eval {
			t.Fatalf("Forward[%d] != poly(w^%d)", k, k)
		}
	}
}

func BenchmarkForward4096(b *testing.B) {
	Prepare(12)
	v := randVec(1<<12, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(v)
	}
}

func BenchmarkForward1M(b *testing.B) {
	Prepare(20)
	v := randVec(1<<20, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(v)
	}
}

func BenchmarkFourStep64k(b *testing.B) {
	v := randVec(1<<16, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FourStep(v, 1<<8, 1<<8)
	}
}
