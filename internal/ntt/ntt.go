// Package ntt implements number-theoretic transforms over the Goldilocks
// field: the standard iterative radix-2 transform, and the four-step
// (Bailey) algorithm that NoCap's 64-lane NTT functional unit executes for
// vectors larger than its native 2^12-point capacity (paper §IV-B, §V-A).
//
// Transforms are cyclic: Forward evaluates a coefficient vector on the
// powers of a primitive n-th root of unity (in natural order), and Inverse
// interpolates back.
package ntt

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"

	"nocap/internal/faultinject"
	"nocap/internal/field"
)

// fiForward is the registered fault-injection point at transform entry
// (chaos tests arm it by this name).
var fiForward = faultinject.Register("ntt.forward")

// FUSize is the largest NTT NoCap's functional unit performs in a single
// pass: 64×64 = 2^12 points (paper §IV-B).
const FUSize = 1 << 12

// FULanes is the element throughput per cycle of the NTT FU.
const FULanes = 64

// twiddleCache memoizes per-size twiddle tables, one atomic slot per
// log2(n). The table for a size is immutable once published, so the hot
// path is a single atomic load (no locks, no allocation). Concurrent
// first use of a new size is safe: each racer computes its own table and
// the first CompareAndSwap wins; losers adopt the published table, so
// every caller sees the same backing array. Prepare remains available as
// an optional warm-up to keep first-request latency off the serving path.
var twiddleCache [field.TwoAdicity + 1]atomic.Pointer[[]field.Element]

// Prepare precomputes the twiddle table for size 1<<logN so later calls
// at that size are allocation-free.
func Prepare(logN int) {
	twiddles(logN)
}

// twiddles returns [w^0, w^1, ..., w^(n/2-1)] for n = 1<<logN.
func twiddles(logN int) []field.Element {
	if p := twiddleCache[logN].Load(); p != nil {
		return *p
	}
	n := 1 << logN
	w := field.RootOfUnity(logN)
	t := make([]field.Element, n/2)
	t[0] = field.One
	for i := 1; i < n/2; i++ {
		t[i] = field.Mul(t[i-1], w)
	}
	if !twiddleCache[logN].CompareAndSwap(nil, &t) {
		// Another goroutine published first; use its table so all callers
		// share one backing array.
		return *twiddleCache[logN].Load()
	}
	return t
}

// checkLen validates that len(v) is a supported power of two and returns
// log2(len(v)).
func checkLen(v []field.Element) int {
	n := len(v)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("ntt: length %d is not a power of two", n))
	}
	logN := bits.TrailingZeros(uint(n))
	if logN > field.TwoAdicity {
		panic(fmt.Sprintf("ntt: length 2^%d exceeds field two-adicity", logN))
	}
	return logN
}

// bitReverse permutes v into bit-reversed index order in place.
func bitReverse(v []field.Element) {
	n := len(v)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
	}
}

// Forward computes the in-place cyclic NTT of v: v[k] ← Σ_j v[j]·w^(jk)
// with w a primitive len(v)-th root of unity. Output is in natural order.
// An injected fault (chaos tests only) escapes as a panic and is
// contained by the caller's zkerr boundary; context-aware callers use
// ForwardCtx instead.
func Forward(v []field.Element) {
	if err := ForwardCtx(context.Background(), v); err != nil {
		panic(err)
	}
}

// ForwardCtx is Forward with cooperative cancellation: the transform
// checks the context between butterfly stages (each stage is O(n), so a
// cancelled 2^20-point transform stops within a fraction of a
// millisecond of work) and passes through the "ntt.forward" fault
// injection point on entry. On cancellation v is left partially
// transformed and must be discarded.
func ForwardCtx(ctx context.Context, v []field.Element) error {
	logN := checkLen(v)
	if logN == 0 {
		return nil
	}
	if err := faultinject.Check(fiForward); err != nil {
		return err
	}
	tw := twiddles(logN)
	n := len(v)
	// Decimation-in-time: bit-reverse input, butterflies in natural order.
	bitReverse(v)
	for s := 1; s <= logN; s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		m := 1 << s
		half := m >> 1
		stride := n / m // twiddle stride into the n/2-entry table
		for base := 0; base < n; base += m {
			for j := 0; j < half; j++ {
				w := tw[j*stride]
				lo := v[base+j]
				hi := field.Mul(v[base+j+half], w)
				v[base+j] = field.Add(lo, hi)
				v[base+j+half] = field.Sub(lo, hi)
			}
		}
	}
	return nil
}

// Inverse computes the in-place inverse cyclic NTT of v, the inverse of
// Forward (including the 1/n scaling).
func Inverse(v []field.Element) {
	logN := checkLen(v)
	if logN == 0 {
		return
	}
	n := len(v)
	// Inverse NTT = forward NTT with w^{-1}; implemented by running the
	// forward transform and reversing the non-fixed positions, then
	// scaling by n^{-1}.
	Forward(v)
	for i, j := 1, n-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
	nInv := field.Inv(field.New(uint64(n)))
	for i := range v {
		v[i] = field.Mul(v[i], nInv)
	}
}

// FourStep computes the same transform as Forward using Bailey's four-step
// algorithm: view v as a rows×cols matrix (row-major), transform columns,
// scale by twiddle factors, transform rows, and transpose. This is the
// decomposition NoCap uses to run arbitrarily large NTTs through its
// 2^12-point FU (paper §V-A); functionally it must agree with Forward,
// which the tests check. rows and cols must be powers of two with
// rows*cols == len(v).
func FourStep(v []field.Element, rows, cols int) {
	n := len(v)
	if rows*cols != n {
		panic("ntt: four-step shape mismatch")
	}
	logN := checkLen(v)
	w := field.RootOfUnity(logN)

	// Step 1: NTT each column (stride-cols subvectors).
	col := make([]field.Element, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = v[r*cols+c]
		}
		Forward(col)
		for r := 0; r < rows; r++ {
			v[r*cols+c] = col[r]
		}
	}
	// Step 2: multiply element (r,c) by w^(r*c).
	wr := field.One // w^r
	for r := 0; r < rows; r++ {
		wrc := field.One // w^(r*c)
		for c := 0; c < cols; c++ {
			v[r*cols+c] = field.Mul(v[r*cols+c], wrc)
			wrc = field.Mul(wrc, wr)
		}
		wr = field.Mul(wr, w)
	}
	// Step 3: NTT each row.
	for r := 0; r < rows; r++ {
		Forward(v[r*cols : (r+1)*cols])
	}
	// Step 4: transpose, so output index k = c*rows + r corresponds to
	// frequency c + cols*r ... i.e. X[c*rows+r] currently at (r,c).
	out := make([]field.Element, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out[c*rows+r] = v[r*cols+c]
		}
	}
	copy(v, out)
}

// PolyMul returns the product of polynomials a and b (coefficient form,
// arbitrary lengths) via NTT convolution, trimmed to the exact product
// degree. This is the "polynomial arithmetic" task of paper §V-A.
func PolyMul(a, b []field.Element) []field.Element {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := 1
	for n < outLen {
		n <<= 1
	}
	fa := make([]field.Element, n)
	fb := make([]field.Element, n)
	copy(fa, a)
	copy(fb, b)
	Forward(fa)
	Forward(fb)
	field.VecMul(fa, fa, fb)
	Inverse(fa)
	return fa[:outLen]
}
