package ntt

import "nocap/internal/field"

// resetTwiddleForTest clears the cached twiddle table for size 1<<logN so
// race tests can re-exercise the concurrent-first-use path repeatedly.
func resetTwiddleForTest(logN int) {
	twiddleCache[logN].Store(nil)
}

// twiddlesForTest exposes the internal table lookup to tests.
func twiddlesForTest(logN int) []field.Element { return twiddles(logN) }
