// Package nocap is a reproduction of "Accelerating Zero-Knowledge Proofs
// Through Hardware-Algorithm Co-Design" (MICRO 2024): the Spartan+Orion
// hash-based zk-SNARK over the Goldilocks-64 field, together with a
// cycle-level model of the NoCap accelerator, its power/area models, the
// baselines it is compared against, and generators for every table and
// figure in the paper's evaluation.
//
// The package is a facade over the internal implementation:
//
//   - Build R1CS circuits with NewBuilder (or the prebuilt benchmark
//     circuits: AES, SHA256, RSA, Auction, Litmus, Synthetic).
//   - Prove and Verify run the real Spartan+Orion zk-SNARK.
//   - Simulate runs the NoCap cycle-level model for full-scale
//     statements; Power and Area report the hardware models.
//   - The Experiment generators regenerate the paper's evaluation.
//
// Quickstart:
//
//	b := nocap.NewBuilder()
//	x := b.Secret(nocap.NewElement(3))
//	sq := b.Square(nocap.FromVar(x))
//	pub := b.Public(b.Value(sq))
//	b.AssertEq(nocap.FromVar(sq), nocap.FromVar(pub))
//	inst, io, w := b.Build()
//	proof, err := nocap.Prove(nocap.TestParams(), inst, io, w)
//	...
//	err = nocap.Verify(nocap.TestParams(), inst, io, proof)
package nocap

import (
	"context"
	"io"

	"nocap/internal/circuits"
	"nocap/internal/experiments"
	"nocap/internal/field"
	"nocap/internal/hashfn"
	"nocap/internal/power"
	"nocap/internal/r1cs"
	"nocap/internal/sim"
	"nocap/internal/spartan"
	"nocap/internal/tasks"
	"nocap/internal/wire"
	"nocap/internal/zkerr"
)

// Error taxonomy (trust boundary, DESIGN.md §7). Every rejection from
// Verify, UnmarshalProof, or Prove matches exactly one of these
// sentinels under errors.Is; callers branch on the category, never on
// message text.
var (
	// ErrMalformedProof: the byte stream or proof structure is invalid
	// (truncation, bad magic, shape mismatch, non-canonical field
	// element).
	ErrMalformedProof = zkerr.ErrMalformedProof
	// ErrBadCommitment: the commitment declares impossible or
	// mismatched geometry.
	ErrBadCommitment = zkerr.ErrBadCommitment
	// ErrSoundnessCheckFailed: well-formed but cryptographically
	// invalid — a soundness check (sum-check, proximity, Merkle path,
	// final evaluation) rejected.
	ErrSoundnessCheckFailed = zkerr.ErrSoundnessCheckFailed
	// ErrResourceLimit: decoding would exceed the configured
	// DecodeLimits.
	ErrResourceLimit = zkerr.ErrResourceLimit
	// ErrInternal: an invariant broke inside the library (contained
	// panic); never caused by proof bytes alone.
	ErrInternal = zkerr.ErrInternal
	// ErrUsage: invalid API usage (e.g. an unknown benchmark name in
	// CircuitByName or impossible parameters).
	ErrUsage = zkerr.ErrUsage
)

// Element is a Goldilocks-64 field element (p = 2^64 − 2^32 + 1).
type Element = field.Element

// NewElement returns the field element congruent to v.
func NewElement(v uint64) Element { return field.New(v) }

// Circuit construction (R1CS arithmetization, paper §II-B).
type (
	// Builder constructs an R1CS circuit and its witness together.
	Builder = r1cs.Builder
	// Instance is a padded R1CS statement.
	Instance = r1cs.Instance
	// Variable is a wire handle; LC a linear combination of wires.
	Variable = r1cs.Variable
	// LC is a linear combination of circuit wires.
	LC = r1cs.LC
)

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return r1cs.NewBuilder() }

// FromVar, Const and the LC combinators re-export the builder algebra.
func FromVar(v Variable) LC      { return r1cs.FromVar(v) }
func Const(v Element) LC         { return r1cs.Const(v) }
func AddLC(a, b LC) LC           { return r1cs.AddLC(a, b) }
func SubLC(a, b LC) LC           { return r1cs.SubLC(a, b) }
func ScaleLC(s Element, a LC) LC { return r1cs.ScaleLC(s, a) }

// Proving (the Spartan+Orion zk-SNARK, paper §II/§V).
type (
	// Params configures the SNARK (repetitions, Orion geometry, ZK).
	Params = spartan.Params
	// Proof is a non-interactive Spartan+Orion proof.
	Proof = spartan.Proof
)

// DefaultParams is the paper's configuration: 3 repetitions, 128-row
// Orion matrix, Reed-Solomon blowup 4 with 189 queries, zero-knowledge
// masking on.
func DefaultParams() Params { return spartan.DefaultParams() }

// TestParams is a small configuration for tests and examples.
func TestParams() Params { return spartan.TestParams() }

// HashEngineNames lists the registered hash engines, in id order: the
// scalar "sha3" default (byte-compatible with every earlier release)
// and the multi-buffer "keccak-x4" Merkle engine.
func HashEngineNames() []string { return hashfn.Names() }

// WithHashEngine returns p with the named hash engine selected for the
// Orion commitment's column leaves, Merkle tree, and Fiat–Shamir
// transcript. Prover and verifier must use the same engine: proofs
// carry the engine id and a verifier under different parameters rejects
// them with ErrBadCommitment. Unknown names are ErrUsage.
func WithHashEngine(p Params, name string) (Params, error) {
	eng, ok := hashfn.ByName(name)
	if !ok {
		return p, zkerr.Usagef("nocap: unknown hash engine %q (have %v)", name, hashfn.Names())
	}
	p.PCS.Hash = eng
	return p, nil
}

// Prove generates a proof that the witness satisfies the instance.
func Prove(p Params, inst *Instance, io, witness []Element) (*Proof, error) {
	return spartan.Prove(p, inst, io, witness)
}

// ProveCtx is Prove under a context (DESIGN.md §8): cancelling ctx or
// letting its deadline expire abandons the in-flight proof at the next
// cooperative checkpoint (between stages, between sumcheck rounds, and
// every few thousand points inside the parallel loops), drains every
// worker goroutine the prover started, and returns an error satisfying
// errors.Is(err, context.Canceled) or context.DeadlineExceeded. A
// subsequent ProveCtx on the same inputs succeeds: abandonment never
// corrupts shared state.
func ProveCtx(ctx context.Context, p Params, inst *Instance, io, witness []Element) (*Proof, error) {
	return spartan.ProveCtx(ctx, p, inst, io, witness)
}

// Verify checks a proof against an instance and public inputs.
func Verify(p Params, inst *Instance, io []Element, proof *Proof) error {
	return spartan.Verify(p, inst, io, proof)
}

// VerifyCtx is Verify under a context, with the same cancellation
// guarantees as ProveCtx.
func VerifyCtx(ctx context.Context, p Params, inst *Instance, io []Element, proof *Proof) error {
	return spartan.VerifyCtx(ctx, p, inst, io, proof)
}

// MarshalProof serializes a proof into the compact wire format.
func MarshalProof(proof *Proof) ([]byte, error) { return proof.MarshalBinary() }

// UnmarshalProof decodes a serialized proof (format validation only;
// call Verify for cryptographic checking). It applies
// DefaultDecodeLimits; use UnmarshalProofLimits to tighten them.
func UnmarshalProof(data []byte) (*Proof, error) { return spartan.UnmarshalProof(data) }

// DecodeLimits bounds the resources an untrusted proof may claim while
// being decoded: total input size, per-vector length, repetition count,
// opened-column count, and the cumulative allocation budget. The zero
// value of any field means "use the default".
type DecodeLimits = wire.Limits

// DefaultDecodeLimits returns the limits UnmarshalProof applies.
func DefaultDecodeLimits() DecodeLimits { return wire.DefaultLimits() }

// UnmarshalProofLimits decodes a serialized proof under caller-chosen
// resource limits; violations are reported as ErrResourceLimit.
func UnmarshalProofLimits(data []byte, limits DecodeLimits) (*Proof, error) {
	return spartan.UnmarshalProofLimits(data, limits)
}

// Benchmark circuits (paper §VII-B).
type Benchmark = circuits.Benchmark

// AES builds the AES-128 benchmark circuit (secret key).
func AES(key [16]byte, plaintext []byte) *Benchmark { return circuits.AES(key, plaintext) }

// SHA256 builds the SHA-256 benchmark circuit (secret preimage blocks).
func SHA256(paddedBlocks []byte) *Benchmark { return circuits.SHA256(paddedBlocks) }

// RSA builds the repeated-modular-squaring benchmark circuit.
func RSA(squarings, numLimbs int, seed int64) *Benchmark {
	return circuits.RSA(squarings, numLimbs, seed)
}

// Auction builds the sealed-bid second-price auction circuit.
func Auction(bids []uint64) *Benchmark { return circuits.Auction(bids) }

// Litmus builds the verifiable-database transaction-batch circuit.
func Litmus(numTxns, numAccounts int, seed int64) *Benchmark {
	return circuits.Litmus(numTxns, numAccounts, seed)
}

// Synthetic builds a banded multiply-accumulate chain of about the given
// number of constraints (for scaling studies).
func Synthetic(constraints int) *Benchmark { return circuits.Synthetic(constraints) }

// CircuitByName builds the named benchmark circuit at size parameter n
// (blocks, bids, squarings, transactions, or constraints, per circuit),
// clamped to the circuit's minimum meaningful size. It is the single
// untrusted-name entry point shared by the CLI and the proving service;
// unknown names return an ErrUsage-classified error. CircuitNames lists
// the accepted names.
func CircuitByName(name string, n int) (*Benchmark, error) { return circuits.ByName(name, n) }

// CircuitNames returns the benchmark names CircuitByName accepts.
func CircuitNames() []string { return circuits.Names() }

// Hardware model (paper §IV, §VI, §VII).
type (
	// HardwareConfig is a NoCap configuration (lanes, register file, HBM).
	HardwareConfig = sim.Config
	// SimResult is a cycle-level simulation outcome.
	SimResult = sim.Result
	// ProtocolOptions selects prover variants (recomputation,
	// repetitions).
	ProtocolOptions = tasks.Options
	// AreaBreakdown is the Table II area model.
	AreaBreakdown = power.AreaBreakdown
	// PowerBreakdown is the Fig. 5 power model.
	PowerBreakdown = power.PowerBreakdown
)

// DefaultHardware returns the paper's NoCap configuration (Table II).
func DefaultHardware() HardwareConfig { return sim.DefaultConfig() }

// DefaultProtocol returns the paper's protocol options (recomputation
// on, 3 repetitions).
func DefaultProtocol() ProtocolOptions { return tasks.DefaultOptions() }

// Simulate runs the cycle-level NoCap model for a 2^logN-constraint
// Spartan+Orion proof.
func Simulate(cfg HardwareConfig, logN int, opts ProtocolOptions) SimResult {
	return sim.Prover(cfg, logN, opts)
}

// Area evaluates the die-area model for a configuration.
func Area(cfg HardwareConfig) AreaBreakdown { return power.Area(cfg) }

// Power evaluates the power model on a simulation result.
func Power(r SimResult) PowerBreakdown { return power.Estimate(r) }

// WriteEvaluation regenerates the paper's full evaluation — every table
// and figure plus the §III/§VIII-C analyses and use cases — to w.
func WriteEvaluation(w io.Writer) error {
	sections := []string{
		experiments.TableI().Render(),
		experiments.TableII().Render(),
		experiments.TableIII().Render(),
		experiments.TableIV().Render(),
		experiments.TableV().Render(),
		experiments.Figure5().Render(),
		experiments.Figure6().Render(),
		experiments.Figure7().Render(),
		experiments.Figure8().Render(),
		experiments.MultiplyAnalysis(12).Render(),
		experiments.Ablations(12).Render(),
		experiments.Platforms().Render(),
		experiments.ProofComposition().Render(),
		experiments.HostInterface().Render(),
		experiments.RackScaleStudy(550_000_000).Render(),
		experiments.DatabaseThroughput().Render(),
		experiments.PhotoEdit().Render(),
	}
	for _, s := range sections {
		if _, err := io.WriteString(w, s+"\n"); err != nil {
			return err
		}
	}
	return nil
}
