// Benchmarks that regenerate the paper's evaluation: one testing.B
// benchmark per table and figure (plus the §III/§VIII-C analyses), each
// reporting the paper-facing metric as custom units. Run with
//
//	go test -bench=. -benchmem
package nocap_test

import (
	"testing"

	"nocap"
	"nocap/internal/experiments"
)

// BenchmarkTableI regenerates the end-to-end comparison at 16M
// constraints and reports NoCap's total seconds.
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		res := experiments.TableI()
		total = res.Rows[len(res.Rows)-1].Times.Total()
	}
	b.ReportMetric(total, "nocap-e2e-s")
}

// BenchmarkTableII evaluates the area model.
func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	var area float64
	for i := 0; i < b.N; i++ {
		area = experiments.TableII().Area.Total()
	}
	b.ReportMetric(area, "mm2")
}

// BenchmarkTableIII evaluates the proof-size/verify-time models across
// the benchmark suite.
func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	var mb float64
	for i := 0; i < b.N; i++ {
		rows := experiments.TableIII().Rows
		mb = rows[len(rows)-1].ProofMB
	}
	b.ReportMetric(mb, "auction-proof-MB")
}

// BenchmarkTableIV runs the full proving-time comparison (five
// simulated NoCap runs + baselines) and reports the gmean speedups.
func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	var res experiments.TableIVResult
	for i := 0; i < b.N; i++ {
		res = experiments.TableIV()
	}
	b.ReportMetric(res.GmeanVsCPU, "gmean-vs-cpu")
	b.ReportMetric(res.GmeanVsPipe, "gmean-vs-pipezk")
}

// BenchmarkTableV runs the end-to-end comparison.
func BenchmarkTableV(b *testing.B) {
	b.ReportAllocs()
	var res experiments.TableVResult
	for i := 0; i < b.N; i++ {
		res = experiments.TableV()
	}
	b.ReportMetric(res.Gmean, "gmean-vs-pipezk")
}

// BenchmarkFigure5 evaluates the power model.
func BenchmarkFigure5(b *testing.B) {
	b.ReportAllocs()
	var w float64
	for i := 0; i < b.N; i++ {
		w = experiments.Figure5().Power.Total()
	}
	b.ReportMetric(w, "watts")
}

// BenchmarkFigure6 computes the runtime/traffic breakdowns.
func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	var share float64
	for i := 0; i < b.N; i++ {
		share = experiments.Figure6().Rows[0].NoCapShare
	}
	b.ReportMetric(100*share, "sumcheck-%")
}

// BenchmarkFigure7 runs the full sensitivity sweep (25 simulated
// configurations × 5 benchmarks).
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Figure7().Points)
	}
	b.ReportMetric(float64(n), "sweep-points")
}

// BenchmarkFigure8 explores the design space and Pareto frontier.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Figure8().Points)
	}
	b.ReportMetric(float64(n), "design-points")
}

// BenchmarkMultiplyAnalysis measures the §III multiply-count ratio on a
// real (2^10) proof.
func BenchmarkMultiplyAnalysis(b *testing.B) {
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = experiments.MultiplyAnalysis(10).Ratio
	}
	b.ReportMetric(ratio, "groth16/spartan-muls")
}

// BenchmarkAblations runs the §VIII-C protocol-optimization study,
// including the measured RS-vs-expander encode ratio.
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = experiments.Ablations(12).NoCapRecomputeSpeedup
	}
	b.ReportMetric(speedup, "recompute-speedup")
}

// BenchmarkUseCases evaluates the database-throughput and photo use
// cases.
func BenchmarkUseCases(b *testing.B) {
	b.ReportAllocs()
	var tx int
	for i := 0; i < b.N; i++ {
		tx = experiments.DatabaseThroughput().NoCapTxPerSec
		_ = experiments.PhotoEdit()
	}
	b.ReportMetric(float64(tx), "tx/s")
}

// BenchmarkProverAblationRecompute is the DESIGN.md §6 ablation bench:
// simulated NoCap prover with and without sumcheck recomputation.
func BenchmarkProverAblationRecompute(b *testing.B) {
	b.ReportAllocs()
	for _, recompute := range []bool{true, false} {
		name := "off"
		if recompute {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			opts := nocap.DefaultProtocol()
			opts.Recompute = recompute
			var sec float64
			for i := 0; i < b.N; i++ {
				sec = nocap.Simulate(nocap.DefaultHardware(), 24, opts).Seconds()
			}
			b.ReportMetric(sec*1e3, "simulated-ms")
		})
	}
}

// BenchmarkRealProver measures this repository's actual Go Spartan+Orion
// prover at laptop scale (the "measured" companion to Table IV).
func BenchmarkRealProver(b *testing.B) {
	b.ReportAllocs()
	for _, logN := range []int{10, 12, 14} {
		b.Run(string(rune('0'+logN/10))+string(rune('0'+logN%10)), func(b *testing.B) {
			b.ReportAllocs()
			bm := nocap.Synthetic(1 << uint(logN))
			params := nocap.TestParams()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealVerifier measures verification at laptop scale.
func BenchmarkRealVerifier(b *testing.B) {
	b.ReportAllocs()
	bm := nocap.Synthetic(1 << 12)
	params := nocap.TestParams()
	proof, err := nocap.Prove(params, bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nocap.Verify(params, bm.Inst, bm.IO, proof); err != nil {
			b.Fatal(err)
		}
	}
}
