package nocap_test

import (
	"testing"
	"time"

	"nocap"
	"nocap/internal/leakcheck"
)

// TestProveStatsCoversAllStages proves a real statement and asserts that
// every one of the paper's five kernel stages did attributable work, and
// that the run returned all of its arena scratch.
func TestProveStatsCoversAllStages(t *testing.T) {
	snap := leakcheck.Take()
	bm := nocap.Synthetic(1 << 10)

	before := nocap.ReadProveStats()
	proof, err := nocap.Prove(nocap.TestParams(), bm.Inst, bm.IO, bm.Witness)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	run := nocap.ReadProveStats().Delta(before)

	if err := nocap.Verify(nocap.TestParams(), bm.Inst, bm.IO, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}

	for name, ss := range run.Stages.Named() {
		if ss.Calls <= 0 {
			t.Errorf("stage %q: %d calls, want > 0", name, ss.Calls)
		}
		if ss.Elems <= 0 {
			t.Errorf("stage %q: %d elems, want > 0", name, ss.Elems)
		}
		if ss.Wall <= 0 {
			t.Errorf("stage %q: wall %v, want > 0", name, ss.Wall)
		}
	}

	if run.Arena.Gets == 0 {
		t.Error("prove performed no arena checkouts; hot paths are not routed through the arena")
	}
	if run.Arena.Outstanding != 0 || run.Arena.OutstandingElems != 0 {
		t.Errorf("prove leaked arena scratch: %d checkouts (%d elems) outstanding",
			run.Arena.Outstanding, run.Arena.OutstandingElems)
	}
	if run.Arena.DoubleReturns != 0 {
		t.Errorf("prove double-returned %d buffers", run.Arena.DoubleReturns)
	}
	snap.CheckTimeout(t, 2*time.Second)
}

// TestProveStatsArenaReuse proves twice and asserts the second run hits
// the warm pool instead of allocating fresh buffers.
func TestProveStatsArenaReuse(t *testing.T) {
	bm := nocap.Synthetic(1 << 9)
	if _, err := nocap.Prove(nocap.TestParams(), bm.Inst, bm.IO, bm.Witness); err != nil {
		t.Fatalf("warmup prove: %v", err)
	}

	before := nocap.ReadProveStats()
	if _, err := nocap.Prove(nocap.TestParams(), bm.Inst, bm.IO, bm.Witness); err != nil {
		t.Fatalf("prove: %v", err)
	}
	run := nocap.ReadProveStats().Delta(before)

	if run.Arena.Hits == 0 {
		t.Error("warm second prove had zero pool hits")
	}
	// Identical shapes: nearly every checkout should find a recycled
	// buffer. GC may drop pooled buffers between runs, so only require a
	// majority rather than an exact count.
	if run.Arena.Hits < run.Arena.Misses {
		t.Errorf("warm prove: %d hits < %d misses; pool reuse is not effective",
			run.Arena.Hits, run.Arena.Misses)
	}
}
