GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS = \
	./internal/spartan:FuzzUnmarshalProof \
	./internal/pcs:FuzzReadOpeningProof \
	./internal/pcs:FuzzReadCommitment \
	./internal/merkle:FuzzReadPath \
	./internal/wire:FuzzReader \
	./internal/cstream:FuzzDecode

.PHONY: all build test vet race fuzz-smoke corpus ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Run each fuzz target for $(FUZZTIME) from its seeded corpus. A finding
# is written to the package's testdata/fuzz directory and fails the run.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME); \
	done

# Regenerate the seed fuzz corpora (deterministic).
corpus:
	$(GO) run ./internal/advtest/gencorpus

ci: vet build test race fuzz-smoke
