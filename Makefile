GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS = \
	./internal/spartan:FuzzUnmarshalProof \
	./internal/pcs:FuzzReadOpeningProof \
	./internal/pcs:FuzzReadCommitment \
	./internal/merkle:FuzzReadPath \
	./internal/wire:FuzzReader \
	./internal/cstream:FuzzDecode

.PHONY: all build test vet race chaos fuzz-smoke corpus ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Fault-injection chaos matrix under the race detector: every injection
# point × {error, panic} with leak checking and clean-retry assertions,
# plus the cancellation-timing sweeps and the pool/injector/leakcheck
# unit tests (DESIGN.md §8).
chaos:
	$(GO) test -race -run 'TestChaos|TestCancel' .
	$(GO) test -race ./internal/par ./internal/faultinject ./internal/leakcheck

# Run each fuzz target for $(FUZZTIME) from its seeded corpus. A finding
# is written to the package's testdata/fuzz directory and fails the run.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME); \
	done

# Regenerate the seed fuzz corpora (deterministic).
corpus:
	$(GO) run ./internal/advtest/gencorpus

ci: vet build test race chaos fuzz-smoke
