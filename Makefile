GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS = \
	./internal/spartan:FuzzUnmarshalProof \
	./internal/pcs:FuzzReadOpeningProof \
	./internal/pcs:FuzzReadCommitment \
	./internal/merkle:FuzzReadPath \
	./internal/wire:FuzzReader \
	./internal/cstream:FuzzDecode \
	./internal/jobs:FuzzDecodeRecord \
	./internal/hashfn:FuzzEngineParity

.PHONY: all build test vet staticcheck race chaos bench-smoke bench-json hash-bench fuzz-smoke corpus serve-smoke stats-race jobs-chaos disk-chaos tenants-soak batch-soak cluster-chaos ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips gracefully when staticcheck is not on
# PATH (local dev boxes); CI installs it and gets the full gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

race:
	$(GO) test -race ./...

# Fault-injection chaos matrix under the race detector: every injection
# point × {error, panic} with leak checking and clean-retry assertions,
# plus the cancellation-timing sweeps and the pool/injector/leakcheck
# unit tests (DESIGN.md §8).
chaos:
	$(GO) test -race -run 'TestChaos|TestCancel' .
	$(GO) test -race ./internal/par ./internal/faultinject ./internal/leakcheck

# One-iteration pass over the prover benchmarks: catches benchmarks that
# no longer compile or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Prove -benchtime 1x .

# Machine-readable end-to-end prove measurements (ns/op, allocs/op, B/op,
# per-stage kernel counters, arena hit rates) for trend tracking, plus
# batched-vs-solo throughput through the shared-structure plan
# (DESIGN.md §15) at batch sizes 1/4/8/16.
bench-json:
	$(GO) test -run TestProveBenchJSON -benchjson BENCH_prove.json .
	$(GO) test -run TestBatchBenchJSON -batchbench BENCH_batch.json .
	$(GO) test -run TestClusterBenchJSON -clusterbench BENCH_cluster.json .

# Per-engine Merkle-kernel measurements: one BENCH_hash_<engine>.json per
# registered hash engine (logN 10/12/14, throughput, speedup vs sha3).
hash-bench:
	$(GO) test -run TestHashBenchJSON -hashbench . .

# Run each fuzz target for $(FUZZTIME) from its seeded corpus. A finding
# is written to the package's testdata/fuzz directory and fails the run.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME); \
	done

# Regenerate the seed fuzz corpora (deterministic).
corpus:
	$(GO) run ./internal/advtest/gencorpus

# End-to-end smoke of the proving service: an in-process nocap-serve
# hammered by nocap-loadgen with mixed prove/verify/malformed/oversized/
# cancel traffic, asserting typed responses, bounded-queue 429s, zero
# goroutine leaks, and a clean arena balance after drain (DESIGN.md §10).
serve-smoke:
	$(GO) run ./cmd/nocap-loadgen -requests 64 -clients 8 -n 256

# Per-run stats attribution under the race detector: concurrent proves
# with per-request collectors must partition the process aggregate
# exactly (DESIGN.md §10), plus the server's mixed-traffic hammer.
stats-race:
	$(GO) test -race -run 'TestConcurrentProveAttribution' -count=1 .
	$(GO) test -race ./internal/server

# Durable-jobs crash matrix under the race detector: journal torn-write
# recovery, a hard SIGKILL of a child process mid-attempt followed by
# replay, fault-injected retries/breaker trips, and the loadgen's
# async-API pass with its crash-window journal corrupter (DESIGN.md §11).
jobs-chaos:
	$(GO) test -race -run 'TestCrash|TestChaos|TestTorn|TestParseJournal|TestOpen|TestShutdownReverts|TestJobs|TestReadyz|TestStatusCode' ./internal/jobs ./internal/server
	$(GO) run -race ./cmd/nocap-loadgen -jobs -requests 40 -clients 8 -n 256

# Durable-state lifecycle matrix under the race detector (DESIGN.md §13):
# checksummed-journal corruption handling, snapshot+compaction bounds and
# retention GC, SIGKILL-mid-compaction replay equivalence (crash before
# the snapshot rename, after it, and during the tail swap), disk-fault
# injection (fsync failure, short write, ENOSPC on append/snapshot/proof
# persist), degraded-mode entry/self-recovery over HTTP, and orphan
# temp/proof sweeping.
disk-chaos:
	$(GO) test -race -run 'TestParseJournal|TestDecodeRecord|TestCompact|TestDegraded|TestShortWrite|TestFsync|TestOrphan|TestJournal' ./internal/jobs
	$(GO) test -race -run 'TestJobsDegradedModeHTTP|TestJobsCompactionBoundsJournalHTTP' ./internal/server

# Multi-tenant fairness soak under the race detector: an in-process
# server with 4 keyed tenants (t0 at 4x DRR weight) under zipf-skewed
# traffic. Asserts per-tenant 429 isolation (a light tenant is never
# shed by the heavy tenant's backlog), starvation-freedom (every
# admitted light request is served, bounded queue wait), typed
# responses, zero goroutine leaks, and arena balance (DESIGN.md §12).
tenants-soak:
	$(GO) run -race ./cmd/nocap-loadgen -tenants 4 -skew zipf -requests 120 -clients 8 -n 128 -workers 4 -queue 4

# Batched-proving soak under the race detector: the async batch planner
# coalesces same-key jobs from two equal-weight keyed tenants; every
# batched proof must be byte-identical to its tenant's solo proof,
# coalescing must show up in the batch metrics, and the scheduler
# ledger must show zero cross-tenant fairness regression — plus the
# journal, goroutine-leak, and arena-balance invariants (DESIGN.md §15).
batch-soak:
	$(GO) run -race ./cmd/nocap-loadgen -batch -requests 48 -clients 8 -n 256 -workers 4 -queue 4

# Distributed-proving chaos matrix under the race detector (DESIGN.md
# §16): the cluster package's lease/health/fairness/locality unit tests
# and kill-mid-proof / mid-batch / mid-result-upload chaos cells, the
# jobs manager's lease-loss refund semantics, the server's end-to-end
# cluster suite (including a real SIGKILLed worker subprocess), and the
# loadgen's coordinator soak with a mid-run node kill — asserting
# exactly-one-terminal-state, refunded attempts, zero client 5xx, and
# zero goroutine leaks throughout.
cluster-chaos:
	$(GO) test -race ./internal/cluster
	$(GO) test -race -run 'TestLeaseLost' ./internal/jobs
	$(GO) test -race -run 'TestClusterServer' ./internal/server
	$(GO) run -race ./cmd/nocap-loadgen -cluster -requests 32 -clients 8 -n 256

ci: vet staticcheck build test race chaos bench-smoke fuzz-smoke stats-race serve-smoke jobs-chaos disk-chaos tenants-soak batch-soak cluster-chaos
